//===-- core/Core.cpp - The Valgrind core ---------------------------------==//
//
// Once the monolith holding the dispatcher, schedulers, signals, client
// requests, and redirection, Core is now the owner/wiring class over the
// extracted engines (DispatchLoop, SignalEngine, RedirectEngine,
// ClientRequestEngine). What remains here: construction and options,
// image loading, the TranslationHost side (the core's own instrumentation
// and translation accounting), thread lifecycle, and thin forwards that
// keep the public surface stable.
//
//===----------------------------------------------------------------------===//

#include "core/Core.h"

#include "core/DispatchLoop.h"
#include "core/TracerHooks.h"
#include "support/Errors.h"

#include <algorithm>

using namespace vg;
using namespace vg::vg1;

//===----------------------------------------------------------------------===//
// Construction and options
//===----------------------------------------------------------------------===//

Tool::~Tool() = default;

Core::Core(Tool *ToolPlugin)
    : XS(std::make_unique<TranslationService>(
          static_cast<TranslationHost &>(*this), Memory, 1u << 14)),
      TT(XS->transTab()), ToolPlugin(ToolPlugin), Spec(vg1SpecFn()) {
  Signals = std::make_unique<SignalEngine>(*this);
  Redirects = std::make_unique<RedirectEngine>(*this);
  ClReqs = std::make_unique<ClientRequestEngine>(*this);
  Dispatch = std::make_unique<DispatchLoop>(*this);
  Opts.addOption("smc-check", "stack",
                 "when to check for self-modifying code: none|stack|all");
  Opts.addOption("chaining", "no",
                 "chain translations directly (ablation of Section 3.9)");
  Opts.addOption("hot-threshold", "0",
                 "executions before a block is retranslated as a "
                 "branch-chased superblock (0 = off)");
  Opts.addOption("trace-tier", "no",
                 "stitch hot superblock chains into optimised traces "
                 "(tier 2; needs --chaining and --hot-threshold)");
  Opts.addOption("trace-threshold", "0",
                 "executions before a hot superblock is considered for "
                 "trace formation (0 = 4x hot-threshold)");
  Opts.addOption("trace-max-blocks", "8",
                 "maximum superblocks stitched into one trace (2-8)");
  Opts.addOption("profile", "no",
                 "record per-phase translation time and per-block execution "
                 "counts; dump a ranked hot-block report at exit");
  Opts.addOption("stack-switch-threshold", "2097152",
                 "SP jumps above this many bytes are stack switches");
  Opts.addOption("log-file", "", "send tool output to a file");
  Opts.addOption("verify-ir", "no", "typecheck IR between phases");
  Opts.addOption("no-iropt", "no",
                 "ablation: disable Phase 2 optimisation and cc-thunk "
                 "specialisation (Section 3.5 bench)");
  Opts.addOption("suppressions", "",
                 "inline suppression spec (Kind or Kind:0xLO-0xHI; ';' "
                 "separates entries)");
  Opts.addOption("fault-inject", "",
                 "deterministic fault plan: kind[:rate],...,seed=N — kinds "
                 "are syscall, shortio, mempressure, wakeup, sigstorm, "
                 "preempt, ttflush, or 'all'");
  Opts.addOption("trace-events", "no",
                 "record Table-1 events, syscalls, signals, and thread "
                 "switches in a ring buffer: no|yes|<capacity>");
  Opts.addOption("trace-dump", "no",
                 "dump the event trace at exit (a fatal signal always "
                 "dumps it)");
  Opts.addOption("jit-threads", "0",
                 "background translation workers for hot-block promotion "
                 "(0 = fully synchronous, deterministic)");
  Opts.addOption("jit-queue-depth", "8",
                 "bounded promotion-queue depth; a full queue falls back "
                 "to inline translation");
  Opts.addOption("tt-cache", "",
                 "directory for the persistent translation cache: warm "
                 "runs install serialized translations instead of "
                 "re-running the pipeline (empty = off)");
  Opts.addOption("tt-cache-max-mb", "256",
                 "size budget for the --tt-cache directory in MiB; oldest "
                 "entries are evicted to fit (0 = unbounded)");
  Opts.addOption("tt-server", "",
                 "Unix-domain socket of a vgserve translation daemon, "
                 "consulted on a local-cache miss; fetched entries are "
                 "re-validated before install and any server failure "
                 "degrades to the local cache / inline JIT (empty = off)");
  Opts.addOption("tt-server-timeout-ms", "200",
                 "per-request deadline for --tt-server traffic; a deadline "
                 "that fires is retried with backoff, then degraded");
  Opts.addOption("sched-threads", "1",
                 "host threads executing guest threads in parallel (1 = the "
                 "serialised big-lock scheduler of Section 3.14; >1 needs a "
                 "tool that declares supportsParallelGuests)");
  if (ToolPlugin)
    ToolPlugin->registerOptions(Opts);
  Kernel = std::make_unique<SimKernel>(AS, &Events, this);
  AS.reserveCoreRegion();
}

Core::~Core() = default;

void Core::applyOptions() {
  std::string S = Opts.getString("smc-check");
  if (S == "none")
    Smc = SmcMode::None;
  else if (S == "all")
    Smc = SmcMode::All;
  else
    Smc = SmcMode::Stack;
  ChainingEnabled = Opts.getBool("chaining");
  HotThreshold = static_cast<uint64_t>(
      Opts.getIntChecked("hot-threshold", 0, INT64_MAX));
  TraceTier = Opts.getBool("trace-tier");
  TraceThreshold = static_cast<uint64_t>(
      Opts.getIntChecked("trace-threshold", 0, INT64_MAX));
  setTraceMaxBlocks(static_cast<unsigned>(
      Opts.getIntChecked("trace-max-blocks", 2, 8)));
  if (Opts.getBool("profile") && !Prof)
    Prof = std::make_unique<Profiler>();
  StackSwitchThreshold =
      static_cast<uint32_t>(Opts.getInt("stack-switch-threshold"));
  if (std::string F = Opts.getString("log-file"); !F.empty())
    Out.openFile(F);
  if (std::string Sup = Opts.getString("suppressions"); !Sup.empty()) {
    std::string Text = Sup;
    std::replace(Text.begin(), Text.end(), ';', '\n');
    Errors.parseSuppressions(Text);
  }
  if (std::string FI = Opts.getString("fault-inject"); !FI.empty()) {
    auto Plan = std::make_unique<FaultPlan>();
    std::string Err;
    if (!Plan->parse(FI, Err))
      fatalError(("--fault-inject: " + Err).c_str());
    Faults = std::move(Plan);
    Kernel->setFaultPlan(Faults.get());
  }
  if (std::string TE = Opts.getString("trace-events");
      !TE.empty() && TE != "no") {
    // "yes" takes the default capacity; anything else must parse cleanly
    // as a positive integer ("--trace-events=4o96" used to silently become
    // capacity 4, truncating the very trace being asked for).
    size_t Cap =
        TE == "yes"
            ? 4096
            : static_cast<size_t>(
                  Opts.getIntChecked("trace-events", 1, INT64_MAX));
    Tracer = std::make_unique<EventTracer>(Cap);
    Tracer->setClock(&Stats.BlocksDispatched);
  }
  TraceDumpAtExit = Opts.getBool("trace-dump");
  SchedThreads = static_cast<unsigned>(
      Opts.getIntChecked("sched-threads", 1, 16));
  if (SchedThreads > 1 && ToolPlugin &&
      !ToolPlugin->supportsParallelGuests()) {
    Out.printf("core: tool '%s' does not support parallel guest execution; "
               "forcing --sched-threads=1\n",
               ToolPlugin->name());
    SchedThreads = 1;
  }
  unsigned JT = static_cast<unsigned>(
      Opts.getIntChecked("jit-threads", 0, 16));
  unsigned QD = static_cast<unsigned>(
      Opts.getIntChecked("jit-queue-depth", 1, 1024));
  if (JT)
    XS->configure(JT, QD);
  std::string CacheDir = Opts.getString("tt-cache");
  std::string ServerSock = Opts.getString("tt-server");
  if (!CacheDir.empty() || !ServerSock.empty()) {
    // The fingerprint covers everything that can change generated code:
    // the tool (its options too — tools register into this same registry)
    // and every core option except the handful that only affect where
    // output/cache files go or what gets *reported* (never what gets
    // *emitted*). --trace-events stays in: it turns on SP-tracking
    // instrumentation. Computed once and shared by the cache and the
    // server client: local files and served images must live in one key
    // space, so a cold --tt-cache run's directory can be served verbatim.
    auto Items = Opts.items();
    std::erase_if(Items, [](const auto &It) {
      return It.first == "tt-cache" || It.first == "tt-cache-max-mb" ||
             It.first == "tt-server" || It.first == "tt-server-timeout-ms" ||
             It.first == "log-file" || It.first == "profile" ||
             It.first == "trace-dump" || It.first == "sched-threads";
    });
    uint64_t CH = TransCache::configHash(
        ToolPlugin ? ToolPlugin->name() : "none", Items);
    if (!CacheDir.empty()) {
      uint64_t MaxMb = static_cast<uint64_t>(
          Opts.getIntChecked("tt-cache-max-mb", 0, 1 << 20));
      XS->attachCache(std::make_unique<TransCache>(
          CacheDir, MaxMb * (1ull << 20), CH));
    }
    if (!ServerSock.empty()) {
      TransServerClient::Config SC;
      SC.SocketPath = ServerSock;
      SC.TimeoutMs = static_cast<int>(
          Opts.getIntChecked("tt-server-timeout-ms", 1, 60000));
      XS->attachServer(std::make_unique<TransServerClient>(SC), CH);
    }
  }
}

int Core::liveThreads() const {
  int N = 0;
  for (const ThreadState &TS : Threads)
    if (TS.Status == ThreadStatus::Runnable)
      ++N;
  return N;
}

bool Core::isParallel() const { return Dispatch->isParallel(); }

//===----------------------------------------------------------------------===//
// Start-up (Section 3.3)
//===----------------------------------------------------------------------===//

void Core::loadImage(const GuestImage &Img) {
  if (ToolPlugin)
    ToolPlugin->init(*this);

  // Chain the core onto the deallocation events (after the tool installed
  // its callbacks): unmapped code must lose its translations (Section 3.8:
  // "translations are also evicted when code in shared objects is
  // unloaded").
  {
    auto ToolMunmap = Events.DieMemMunmap;
    Events.DieMemMunmap = [this, ToolMunmap](uint32_t Addr, uint32_t Len) {
      discardTranslations(Addr, Len);
      if (ToolMunmap)
        ToolMunmap(Addr, Len);
    };
    auto ToolBrk = Events.DieMemBrk;
    Events.DieMemBrk = [this, ToolBrk](uint32_t Addr, uint32_t Len) {
      discardTranslations(Addr, Len);
      if (ToolBrk)
        ToolBrk(Addr, Len);
    };
  }

  // --trace-events sees everything from here on, including the start-up
  // mappings below. (Layering the tracer over every EventHub callback makes
  // wantsStackEvents() true even for tools that ignore stacks — traced runs
  // deliberately instrument SP changes so the trace is complete.)
  installTracerHooks(Events, Tracer.get());

  // The sigreturn trampoline lives in the core's own region: a handler
  // returning normally lands here, which re-enters the core via the
  // sigreturn syscall.
  {
    Assembler TrampAsm(AddressSpace::CoreBase);
    TrampAsm.movi(Reg::R0, SysSigreturn);
    TrampAsm.sys();
    TrampAsm.hlt(); // unreachable
    std::vector<uint8_t> T = TrampAsm.finalize();
    Memory.map(AddressSpace::CoreBase, AddressSpace::PageSize, PermRX);
    Memory.write(AddressSpace::CoreBase, T.data(),
                 static_cast<uint32_t>(T.size()), /*IgnorePerms=*/true);
  }

  uint32_t HighestEnd = 0;
  for (const ImageSegment &S : Img.Segments) {
    uint32_t Len = static_cast<uint32_t>(S.Bytes.size());
    Memory.map(S.Base, Len, S.Perms);
    Memory.write(S.Base, S.Bytes.data(), Len, /*IgnorePerms=*/true);
    AS.add(S.Base, Len, S.Perms,
           (S.Perms & PermExec) ? SegKind::ClientText : SegKind::ClientData,
           (S.Perms & PermExec) ? "text" : "data");
    if (Events.NewMemStartup)
      Events.NewMemStartup(S.Base, Len, S.Perms);
    HighestEnd = std::max(HighestEnd, S.Base + Len);
  }

  // The brk segment starts one page past the highest load segment.
  uint32_t HeapStart = AddressSpace::pageUp(HighestEnd) + AddressSpace::PageSize;
  AS.add(HeapStart, AddressSpace::PageSize, PermRW, SegKind::ClientHeap,
         "brk");
  Memory.map(HeapStart, AddressSpace::PageSize, PermRW);
  if (Events.NewMemStartup)
    Events.NewMemStartup(HeapStart, AddressSpace::PageSize, PermRW);

  // Client stack.
  uint32_t StackTop = 0xBFFF0000;
  uint32_t StackSize = AddressSpace::pageUp(Img.StackSize);
  Memory.map(StackTop - StackSize, StackSize, PermRW);
  AS.add(StackTop - StackSize, StackSize, PermRW, SegKind::ClientStack,
         "stack");
  uint32_t InitSP = StackTop - 64; // start-up setup area
  if (Events.NewMemStartup)
    Events.NewMemStartup(InitSP, StackTop - InitSP, PermRW);

  ThreadState &TS = Threads[0];
  TS.Tid = 0;
  TS.Status = ThreadStatus::Runnable;
  TS.Memory = &Memory;
  TS.StackBase = StackTop;
  TS.StackLimit = StackTop - StackSize;
  TS.TrackedSP = InitSP;
  TS.setGpr(RegSP, InitSP);
  TS.setPCVal(Img.Entry);

  // R8: heap-tracking tools get the replacement allocator. The core
  // redirects the program's allocator symbols (Section 3.13) to host
  // replacements backed by clientMalloc/clientFree, which drive the
  // tool's onMalloc/onFree callbacks and add red zones.
  if (ToolPlugin && ToolPlugin->tracksHeap()) {
    redirectSymbolToHost("malloc", [](Core &C, ThreadState &TS) {
      TS.setGpr(0, C.clientMalloc(TS.Tid, TS.gpr(1), false));
    });
    redirectSymbolToHost("free", [](Core &C, ThreadState &TS) {
      C.clientFree(TS.Tid, TS.gpr(1));
    });
    redirectSymbolToHost("calloc", [](Core &C, ThreadState &TS) {
      uint64_t Total = static_cast<uint64_t>(TS.gpr(1)) * TS.gpr(2);
      TS.setGpr(0, Total > 0xFFFFFFFFull
                       ? 0
                       : C.clientMalloc(TS.Tid,
                                        static_cast<uint32_t>(Total), true));
    });
    redirectSymbolToHost("realloc", [](Core &C, ThreadState &TS) {
      TS.setGpr(0, C.clientRealloc(TS.Tid, TS.gpr(1), TS.gpr(2)));
    });
  }

  // Resolve pending symbol redirections/wraps against the image's symbol
  // table (and keep the table so later registrations resolve immediately).
  Redirects->setImageSymbols(Img.Symbols);
}

//===----------------------------------------------------------------------===//
// Core-side helpers callable from translated code
//===----------------------------------------------------------------------===//

uint64_t Core::helperSmcCheck(void *Env, uint64_t TransPtr, uint64_t,
                              uint64_t, uint64_t) {
  auto *Ctx = static_cast<ExecContext *>(Env);
  auto *T = reinterpret_cast<Translation *>(static_cast<uintptr_t>(TransPtr));
  GuestMemory &Mem = *Ctx->Mem;
  uint64_t H = 0xcbf29ce484222325ULL;
  for (auto [Lo, Hi] : T->Extents) {
    for (uint32_t A = Lo; A != Hi; ++A) {
      uint8_t B = 0;
      Mem.read(A, &B, 1, /*IgnorePerms=*/true);
      H ^= B;
      H *= 0x100000001b3ULL;
    }
  }
  return H != T->CodeHash ? 1 : 0;
}

uint64_t Core::helperTrackSp(void *Env, uint64_t, uint64_t, uint64_t,
                             uint64_t) {
  auto *Ctx = static_cast<ExecContext *>(Env);
  Core *C = static_cast<Core *>(Ctx->Core);
  // Index through the context's tid, never the scheduler's "current"
  // thread: under --sched-threads=N several contexts execute at once and
  // CurTid is meaningless (satellite of the big-lock break-up — this was
  // the one helper that still assumed the serialised world).
  ThreadState &TS = C->Threads[Ctx->Tid];
  uint32_t NewSP = TS.gpr(RegSP);
  uint32_t Old = TS.TrackedSP;
  if (NewSP == Old)
    return 0;

  // Stack-switch heuristic (Section 3.12): a jump of >= threshold bytes, or
  // a move into a different registered stack, is a switch (no events).
  uint32_t Delta = NewSP > Old ? NewSP - Old : Old - NewSP;
  int OldStk = C->ClReqs->stackIdOf(Old);
  int NewStk = C->ClReqs->stackIdOf(NewSP);
  if (Delta >= C->StackSwitchThreshold || OldStk != NewStk) {
    TS.TrackedSP = NewSP;
    return 0;
  }
  if (NewSP < Old) {
    if (C->Events.NewMemStack)
      C->Events.NewMemStack(NewSP, Old - NewSP);
  } else {
    if (C->Events.DieMemStack)
      C->Events.DieMemStack(Old, NewSP - Old);
  }
  TS.TrackedSP = NewSP;
  return 0;
}

namespace {
// The SMC check hashes guest *memory* only; SP tracking fires stack events
// that mark shadow memory, so it must not preserve cached probe results.
const ir::Callee SmcCheckCallee = {"vg_smc_check", &Core::helperSmcCheck, 0,
                                   /*PreservesShadow=*/true,
                                   /*StateFxComplete=*/true};
const ir::Callee TrackSpCallee = {"vg_track_sp", &Core::helperTrackSp, 0,
                                  /*PreservesShadow=*/false,
                                  /*StateFxComplete=*/true};
const ir::CalleeRegistrar RegisterCallees{&SmcCheckCallee, &TrackSpCallee};
} // namespace

//===----------------------------------------------------------------------===//
// Translation (including the core's own instrumentation)
//===----------------------------------------------------------------------===//

void Core::instrumentBlock(ir::IRSB &SB, uint32_t Addr, Translation *Trans,
                           bool WantSmc,
                           const std::vector<uint32_t> &SeamEntries) {
  // Phase 3 proper: the tool's analysis code.
  if (ToolPlugin)
    ToolPlugin->instrument(SB);

  // R7: stack events. The core instruments SP changes on the tool's behalf
  // (Section 3.12): after every Put of the stack pointer, call the
  // SP-tracking helper (annotated as reading SP so the put stays live).
  if (Events.wantsStackEvents()) {
    std::vector<ir::Stmt *> Old;
    Old.swap(SB.stmts());
    for (ir::Stmt *S : Old) {
      SB.append(S);
      if (S->Kind == ir::StmtKind::Put && S->Offset == gso::gpr(RegSP))
        SB.dirty(&TrackSpCallee, {}, ir::NoTmp, nullptr,
                 {{gso::gpr(RegSP), 4, /*IsWrite=*/false}});
    }
  }

  // Self-modifying-code check (Section 3.16): prepended so a stale block
  // aborts before running any guest work. A trace additionally re-checks at
  // every seam: its constituents were inlined without their own preludes,
  // so a store inside the trace body can invalidate a later constituent —
  // the seam exit aborts there with the guest state consistent (the exit
  // writes the seam PC itself; the dispatcher's SmcFail handler then
  // invalidates the whole trace's extents and resumes at that PC).
  if (WantSmc) {
    auto EmitCheck = [&](uint32_t ResumePC) {
      ir::TmpId Stale = SB.newTmp(ir::Ty::I32);
      SB.dirty(&SmcCheckCallee,
               {SB.constI64(static_cast<uint64_t>(
                   reinterpret_cast<uintptr_t>(Trans)))},
               Stale);
      ir::TmpId Cond = SB.wrTmp(SB.unop(ir::Op::CmpNEZ32, SB.rdTmp(Stale)));
      SB.exit(SB.rdTmp(Cond), ResumePC, ir::JumpKind::SmcFail);
    };
    std::vector<ir::Stmt *> Old;
    Old.swap(SB.stmts());
    EmitCheck(Addr);
    for (ir::Stmt *S : Old) {
      if (!SeamEntries.empty() && S->Kind == ir::StmtKind::IMark &&
          std::find(SeamEntries.begin(), SeamEntries.end(), S->IAddr) !=
              SeamEntries.end())
        EmitCheck(S->IAddr);
      SB.append(S);
    }
  }
}

bool Core::addrOnAnyStack(uint32_t Addr) const {
  for (const ThreadState &TS : Threads)
    if (TS.Status == ThreadStatus::Runnable && Addr >= TS.StackLimit &&
        Addr < TS.StackBase)
      return true;
  return ClReqs->onRegisteredStack(Addr);
}

void Core::setupTranslation(TranslationOptions &TO, uint32_t PC, bool Hot,
                            Translation *Raw) {
  TO.Spec = Spec;
  TO.Verify = Opts.getBool("verify-ir");
  TO.Prof = Prof.get();
  if (Hot) {
    // Hot tier: chase branches aggressively so the loop body becomes one
    // superblock with chainable internal exits. Cold translations keep the
    // default limits; only blocks that prove hot pay for big-superblock
    // formation.
    TO.Frontend.MaxInsns = 200;
    TO.Frontend.MaxChases = 16;
  }
  if (size_t N = TO.Trace.Entries.size()) {
    // Tier 2: the trace inlines up to N former superblocks, so the limits
    // scale with the path length (capped — the executor frame and the
    // linear-scan allocator put a practical ceiling on block size).
    TO.Frontend.MaxInsns =
        static_cast<uint32_t>(std::min<size_t>(200 * N, 1200));
    TO.Frontend.MaxChases =
        static_cast<uint32_t>(std::min<size_t>(16 * N, 64));
  }
  if (Opts.getBool("no-iropt")) {
    TO.RunOptimise1 = false;
    TO.RunOptimise2 = false;
    TO.Spec = [](ir::IRSB &, const ir::Callee *,
                 const std::vector<ir::Expr *> &) -> ir::Expr * {
      return nullptr; // keep every helper call
    };
  }
  if (Events.wantsStackEvents()) {
    // Every SP write must remain visible to the SP-tracking helper (R7).
    TO.Preserve.Lo = gso::gpr(RegSP);
    TO.Preserve.Hi = gso::gpr(RegSP) + 4;
  }
  // The SMC policy consults live stack geometry, so it is sampled here on
  // the guest thread; a worker running this hook later must not recompute
  // it.
  bool WantSmc = Smc == SmcMode::All ||
                 (Smc == SmcMode::Stack && addrOnAnyStack(PC));
  // An SMC prelude embeds this run's Translation* in the blob, and under
  // --smc-check=stack the decision itself depends on live stack geometry,
  // so such blocks must never be served from (or written to) the
  // persistent cache. Traces are never cacheable either: they encode this
  // run's branch bias and chain graph, which no byte-content key captures.
  Raw->Cacheable = !WantSmc && TO.Trace.Entries.empty();
  // Seam entries (constituents after the head) for the per-seam SMC
  // checks; copied now so the worker-side instrument call needs nothing
  // from the guest thread.
  std::vector<uint32_t> Seams(
      TO.Trace.Entries.empty() ? TO.Trace.Entries.begin()
                               : TO.Trace.Entries.begin() + 1,
      TO.Trace.Entries.end());
  TO.Instrument = [this, PC, Raw, WantSmc,
                   Seams = std::move(Seams)](ir::IRSB &SB) {
    instrumentBlock(SB, PC, Raw, WantSmc, Seams);
  };
}

void Core::noteTranslation(uint32_t PC, const Translation &T,
                           double Seconds) {
  ++Stats.Translations;
  Stats.GuestInsnsTranslated += T.NumInsns;
  Stats.TranslateSeconds += Seconds;
  if (Prof)
    Prof->noteTranslation(PC, T.NumInsns, T.Tier, Seconds);
}

void Core::mergePhaseTimes(const PhaseTimes &PT) {
  if (Prof)
    Prof->mergePhases(PT);
}

void Core::promotionInstalled(Translation *T, uint64_t GenBefore) {
  Dispatch->promotionInstalled(T, GenBefore);
}

//===----------------------------------------------------------------------===//
// Execution (forwards into the dispatch engine)
//===----------------------------------------------------------------------===//

CoreExit Core::run(uint64_t MaxBlocks) { return Dispatch->run(MaxBlocks); }

uint32_t Core::callGuest(ThreadState &TS, uint32_t Addr,
                         const std::vector<uint32_t> &Args) {
  return Dispatch->callGuest(TS, Addr, Args);
}

CoreExit Core::finishRun() {
  // Stop the translation workers before reporting: unpublished jobs are
  // abandoned (counted), and the counters below must be final. Any
  // callGuest from a tool's fini degrades to inline promotion.
  XS->shutdown();

  if (ToolPlugin)
    ToolPlugin->fini(ProcessExitCode);
  Dispatch->dumpProfile();
  if (Tracer && (TraceDumpAtExit || FatalSignal))
    Tracer->dump(Out);

  CoreExit E;
  if (FatalSignal) {
    E.K = CoreExit::Kind::FatalSignal;
    E.Signal = FatalSignal;
  } else if (!ProcessExited) {
    E.K = CoreExit::Kind::BlockLimit;
  } else {
    E.Code = ProcessExitCode;
  }
  return E;
}

//===----------------------------------------------------------------------===//
// Threads
//===----------------------------------------------------------------------===//

int Core::spawnThread(uint32_t Entry, uint32_t SP, uint32_t Arg) {
  for (int I = 0; I != MaxThreads; ++I) {
    ThreadState &TS = Threads[I];
    if (TS.Status != ThreadStatus::Empty && TS.Status != ThreadStatus::Exited)
      continue;
    TS = ThreadState();
    TS.Tid = I;
    TS.Status = ThreadStatus::Runnable;
    TS.Memory = &Memory;
    TS.setGpr(RegSP, SP);
    TS.setGpr(1, Arg);
    TS.setPCVal(Entry);
    TS.TrackedSP = SP;
    TS.StackBase = SP;
    TS.StackLimit = SP > (1u << 20) ? SP - (1u << 20) : 0;
    Dispatch->threadSpawned(I);
    return I;
  }
  return -1;
}

void Core::exitThread(int Tid, int Code) {
  if (Tid < 0 || Tid >= MaxThreads)
    return;
  ThreadState &TS = Threads[Tid];
  Signals->threadExiting(TS);
  TS.Status = ThreadStatus::Exited;
  if (Tracer)
    Tracer->record(Tid, TraceEvent::ThreadExit, static_cast<uint32_t>(Code));
  if (liveThreads() == 0) {
    ProcessExited = true;
    ProcessExitCode = Code;
    Dispatch->stopWorld();
  }
}

void Core::requestYield(int Tid) { Dispatch->requestYield(Tid); }

//===----------------------------------------------------------------------===//
// Signals (KernelHost forwards into the signal engine)
//===----------------------------------------------------------------------===//

void Core::setSignalHandler(int Sig, uint32_t Handler) {
  Signals->setHandler(Sig, Handler);
}

uint32_t Core::signalHandler(int Sig) const { return Signals->handler(Sig); }

bool Core::raiseSignal(int Tid, int Sig) { return Signals->raise(Tid, Sig); }

void Core::sigreturn(int Tid) { Signals->sigreturn(Tid); }

//===----------------------------------------------------------------------===//
// Translation discard (client request + munmap)
//===----------------------------------------------------------------------===//

void Core::discardTranslations(uint32_t Addr, uint32_t Len) {
  XS->invalidate(Addr, Len);
}

//===----------------------------------------------------------------------===//
// Stack traces
//===----------------------------------------------------------------------===//

std::vector<uint32_t> Core::captureStackTrace(ThreadState &TS, unsigned Max) {
  // Conservative scan: walk up the stack looking for plausible return
  // addresses (values pointing into executable client memory).
  std::vector<uint32_t> Trace;
  uint32_t SP = TS.gpr(RegSP);
  for (uint32_t Off = 0; Off < 512 && Trace.size() < Max; Off += 4) {
    uint32_t V;
    if (Memory.read(SP + Off, &V, 4, true).Faulted)
      break;
    if (const Segment *S = AS.segmentAt(V);
        S && S->Kind == SegKind::ClientText)
      Trace.push_back(V);
  }
  return Trace;
}

void Core::internalError(const char *Msg) { fatalError(Msg); }
