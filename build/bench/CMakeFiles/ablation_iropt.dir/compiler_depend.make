# Empty compiler generated dependencies file for ablation_iropt.
# This may be replaced when dependencies are built.
