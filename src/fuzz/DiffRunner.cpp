//===-- fuzz/DiffRunner.cpp - Oracle-vs-JIT differential executor ---------==//

#include "fuzz/DiffRunner.h"

#include "server/TransServer.h"
#include "tools/Cachegrind.h"
#include "tools/ICnt.h"
#include "tools/Loopgrind.h"
#include "tools/Memcheck.h"
#include "tools/Nulgrind.h"
#include "tools/TaintGrind.h"

#include <atomic>
#include <filesystem>
#include <memory>
#include <sstream>

#include <unistd.h>

using namespace vg;
using namespace vg::fuzz;

namespace {

// Generous for hygienic programs (well under 100k retired instructions),
// tight enough that a miscompiled loop surfaces as a "completed" divergence
// in well under a second.
constexpr uint64_t OracleMaxInsns = 20'000'000;
constexpr uint64_t CoreMaxBlocks = 300'000;

std::unique_ptr<Tool> makeTool(const std::string &Name) {
  if (Name == "nulgrind")
    return std::make_unique<Nulgrind>();
  if (Name == "icnt")
    return std::make_unique<ICnt>(ICnt::Mode::Inline);
  if (Name == "icntc")
    return std::make_unique<ICnt>(ICnt::Mode::CCall);
  if (Name == "memcheck")
    return std::make_unique<Memcheck>();
  if (Name == "cachegrind")
    return std::make_unique<Cachegrind>();
  if (Name == "taintgrind")
    return std::make_unique<TaintGrind>();
  if (Name == "loopgrind")
    return std::make_unique<Loopgrind>();
  return nullptr;
}

std::string brief(const std::string &S) {
  if (S.size() <= 96)
    return S;
  return S.substr(0, 96) + "...(" + std::to_string(S.size()) + "B)";
}

void compareReports(const RunReport &Oracle, const RunReport &Got,
                    const FuzzConfig &C, const ICnt *Counter,
                    const Memcheck *Mc, bool Smc, bool Signals,
                    std::vector<Divergence> &Out) {
  auto div = [&](const char *Field, std::string E, std::string G) {
    Out.push_back({C.Name, Field, std::move(E), std::move(G)});
  };
  if (Oracle.Completed != Got.Completed)
    div("completed", Oracle.Completed ? "completed" : "did-not-complete",
        Got.Completed ? "completed" : "did-not-complete");
  if (Oracle.FatalSignal != Got.FatalSignal)
    div("fatalsig", std::to_string(Oracle.FatalSignal),
        std::to_string(Got.FatalSignal));
  if (Oracle.ExitCode != Got.ExitCode)
    div("exit", std::to_string(Oracle.ExitCode),
        std::to_string(Got.ExitCode));
  if (Oracle.Stdout != Got.Stdout)
    div("stdout", brief(Oracle.Stdout), brief(Got.Stdout));

  // Tool invariants — only meaningful when both runs completed.
  if (!Oracle.Completed || !Got.Completed)
    return;
  if (C.CheckInsnCount && Counter && !Signals) {
    // Signal programs execute handler instructions only under the core, so
    // the equality only holds for signal-free programs.
    if (Counter->count() != Oracle.NativeInsns)
      div("icnt", std::to_string(Oracle.NativeInsns),
          std::to_string(Counter->count()));
  }
  if (C.CheckMemcheckClean && Mc && Mc->uniqueErrors() != 0)
    div("mc-errors", "0", std::to_string(Mc->uniqueErrors()));
  if (Smc && C.CheckSmcRetrans && Got.Stats.SmcRetranslations == 0)
    div("smc", ">=1 retranslation", "0");
}

} // namespace

std::vector<FuzzConfig> vg::fuzz::defaultMatrix(const FuzzProgram &P) {
  std::vector<FuzzConfig> M;
  M.push_back({"nulgrind", "nulgrind", {}, false, false});
  M.push_back({"nulgrind-noopt", "nulgrind", {"--no-iropt"}, false, false});
  M.push_back({"nulgrind-chain",
               "nulgrind",
               {"--chaining=yes", "--hot-threshold=2"},
               false,
               false,
               /*CheckSmcRetrans=*/false});
  M.push_back({"nulgrind-verify", "nulgrind", {"--verify-ir"}, false, false});
  {
    // Scheduler fuzzing: only observation-neutral fault kinds (preempts,
    // translation-table flushes, and signal storms when handlers exist —
    // anything else perturbs guest-visible results by design).
    std::ostringstream Spec;
    Spec << "--fault-inject=preempt:20,ttflush:50"; // rates are 1-in-N
    if (P.Signals)
      Spec << ",sigstorm:20";
    Spec << ",seed=" << (P.Seed ^ 0xFA01Du);
    // No SMC-retranslation assertion here: an injected ttflush between the
    // patch and the re-execution retranslates from the patched bytes, so
    // the SmcFail path (correctly) never fires.
    M.push_back({"nulgrind-fault", "nulgrind", {Spec.str()}, false, false,
                 /*CheckSmcRetrans=*/false});
  }
  // Asynchronous tiered translation: two workers racing the guest thread.
  // Guest-visible behaviour must still match the oracle exactly — only
  // timing (which tier runs when) may differ, so the SMC-retranslation
  // invariant is waived (an async superblock installed from fresh bytes
  // legitimately swallows the SmcFail, just like the hot cell above).
  M.push_back({"nulgrind-async",
               "nulgrind",
               {"--chaining=yes", "--hot-threshold=2", "--jit-threads=2"},
               false,
               false,
               /*CheckSmcRetrans=*/false});
  // Trace tier: aggressive thresholds so fuzz-sized loops actually stitch
  // traces. Same SMC waiver as the hot/async cells — a trace formed after
  // the patch was translated from the patched bytes, so SmcFail may
  // legitimately never fire.
  M.push_back({"nulgrind-traces",
               "nulgrind",
               {"--chaining=yes", "--hot-threshold=2", "--trace-tier=yes",
                "--trace-threshold=8"},
               false,
               false,
               /*CheckSmcRetrans=*/false});
  // Sharded scheduler: the fuzz programs are single-threaded, so all but
  // one shard park — but the dispatch path, fast-cache policy, chain
  // publication, and epoch-based translation reclaim are the MT ones, and
  // every guest-visible observation must still match the serial oracle.
  // The SMC waiver matches the other retranslation-perturbing cells.
  M.push_back({"nulgrind-mt",
               "nulgrind",
               {"--sched-threads=4"},
               false,
               false,
               /*CheckSmcRetrans=*/false});
  M.push_back({"icnt", "icnt", {}, true, false});
  M.push_back({"icntc", "icntc", {"--chaining=yes"}, true, false});
  M.push_back({"memcheck",
               "memcheck",
               {"--chaining=yes", "--hot-threshold=3"},
               false,
               true,
               /*CheckSmcRetrans=*/false});
  M.push_back({"memcheck-async",
               "memcheck",
               {"--chaining=yes", "--hot-threshold=3", "--jit-threads=2"},
               false,
               true,
               /*CheckSmcRetrans=*/false});
  M.push_back({"memcheck-traces",
               "memcheck",
               {"--chaining=yes", "--hot-threshold=2", "--trace-tier=yes",
                "--trace-threshold=8"},
               false,
               true,
               /*CheckSmcRetrans=*/false});
  // Memcheck under the sharded scheduler with the JIT lit up: shadow
  // memory, error recording, and hot promotion all take their MT paths.
  M.push_back({"memcheck-mt",
               "memcheck",
               {"--chaining=yes", "--hot-threshold=3", "--sched-threads=4"},
               false,
               true,
               /*CheckSmcRetrans=*/false});
  M.push_back({"cachegrind", "cachegrind", {}, false, false});
  M.push_back({"taintgrind", "taintgrind", {}, false, false});
  // Client-request cell: requests end blocks with JumpKind::ClientReq, and
  // the ClReq/ClReqCore/ClReqTool atoms put them in every program, so this
  // cell drives them across every tier boundary at once — chained blocks,
  // async hot promotion, and trace stitching racing the guest. The JIT and
  // the RefInterp oracle must agree on every request's result.
  M.push_back({"nulgrind-creq",
               "nulgrind",
               {"--chaining=yes", "--hot-threshold=2", "--trace-tier=yes",
                "--trace-threshold=8", "--jit-threads=2"},
               false,
               false,
               /*CheckSmcRetrans=*/false});
  // Loopgrind: its entry dirty call rides inside every translation, and
  // the LG-tagged atoms flip collection on and off mid-program. Guest-
  // visible state must be bit-identical to the oracle regardless.
  M.push_back({"loopgrind",
               "loopgrind",
               {"--chaining=yes", "--hot-threshold=2", "--trace-tier=yes",
                "--trace-threshold=8"},
               false,
               false,
               /*CheckSmcRetrans=*/false});
  // Persistent translation cache: cold run writes, warm run installs the
  // deserialized translations — both must match the oracle bit for bit.
  // (SMC programs get --smc-check=all below, which marks every block
  // non-cacheable; the cells then degenerate to plain double runs, still
  // divergence-checked.)
  M.push_back({"nulgrind-cache",
               "nulgrind",
               {"--chaining=yes", "--hot-threshold=2"},
               false,
               false,
               /*CheckSmcRetrans=*/false,
               /*CacheTwice=*/true});
  M.push_back({"memcheck-cache",
               "memcheck",
               {"--chaining=yes", "--hot-threshold=3"},
               false,
               true,
               /*CheckSmcRetrans=*/false,
               /*CacheTwice=*/true});
  // Translation server: same double-run shape as the cache cells, but the
  // translations travel through a live in-process vgserve daemon — cold run
  // warms it via write-back PUTs, warm run installs over the socket after
  // full client-side re-validation.
  M.push_back({"nulgrind-served",
               "nulgrind",
               {"--chaining=yes", "--hot-threshold=2"},
               false,
               false,
               /*CheckSmcRetrans=*/false,
               /*CacheTwice=*/false,
               /*ServeTwice=*/true});
  if (P.Smc)
    for (FuzzConfig &C : M)
      C.Opts.push_back("--smc-check=all");
  return M;
}

/// A unique scratch directory per cache cell: fuzz processes run in
/// parallel under ctest, so the name carries the pid, and diffRun is
/// re-entered per iteration, so it also carries a process-wide counter.
static std::string freshCacheDir() {
  static std::atomic<uint64_t> Counter{0};
  std::filesystem::path P =
      std::filesystem::temp_directory_path() /
      ("vgfuzz-ttc-" + std::to_string(getpid()) + "-" +
       std::to_string(Counter.fetch_add(1)));
  return P.string();
}

static void runOne(const FuzzProgram &P, const GuestImage &Img,
                   const RunReport &Oracle, const FuzzConfig &C,
                   std::vector<Divergence> &Out) {
  std::string CacheDir;
  std::string ServerSock;
  auto runAs = [&](const FuzzConfig &Cell) {
    std::unique_ptr<Tool> T = makeTool(Cell.ToolName);
    if (!T) {
      Out.push_back({Cell.Name, "config", "known tool", Cell.ToolName});
      return;
    }
    std::vector<std::string> Opts = Cell.Opts;
    if (!CacheDir.empty())
      Opts.push_back("--tt-cache=" + CacheDir);
    if (!ServerSock.empty())
      Opts.push_back("--tt-server=" + ServerSock);
    RunReport Got =
        runUnderCore(Img, T.get(), Opts, P.StdinData, CoreMaxBlocks);
    const ICnt *Counter = dynamic_cast<const ICnt *>(T.get());
    const Memcheck *Mc = dynamic_cast<const Memcheck *>(T.get());
    compareReports(Oracle, Got, Cell, Counter, Mc, P.Smc, P.Signals, Out);
  };
  if (C.ServeTwice) {
    std::string Dir = freshCacheDir();
    TransServer::Options SO;
    SO.Dir = Dir;
    SO.SocketPath = Dir + ".sock";
    TransServer Server(SO);
    std::string SrvErr;
    if (!Server.start(SrvErr)) {
      // No socket to serve on (exotic sandbox): the client would just fall
      // back to inline JIT, which the plain cells already cover — skip.
      std::error_code EC;
      std::filesystem::remove_all(Dir, EC);
      return;
    }
    ServerSock = SO.SocketPath;
    runAs(C); // cold: warms the daemon via write-back PUTs
    FuzzConfig Warm = C;
    Warm.Name += "-warm";
    runAs(Warm); // warm: installs over the wire
    Server.stop();
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
    return;
  }
  if (!C.CacheTwice) {
    runAs(C);
    return;
  }
  CacheDir = freshCacheDir();
  runAs(C); // cold: populates the cache
  FuzzConfig Warm = C;
  Warm.Name += "-warm";
  runAs(Warm); // warm: installs from it
  std::error_code EC;
  std::filesystem::remove_all(CacheDir, EC);
}

DiffResult vg::fuzz::diffRun(const FuzzProgram &P,
                             const std::vector<FuzzConfig> &M) {
  DiffResult R;
  GuestImage Img = render(P);
  RunReport Oracle = runNative(Img, P.StdinData, OracleMaxInsns);
  if (!Oracle.Completed) {
    // The oracle itself must always terminate cleanly — anything else is a
    // generator-hygiene bug worth shrinking and reporting the same way.
    R.Divs.push_back({"oracle", "completed", "completed",
                      Oracle.FatalSignal
                          ? "fatal signal " + std::to_string(Oracle.FatalSignal)
                          : "did-not-complete"});
    return R;
  }
  for (const FuzzConfig &C : M)
    runOne(P, Img, Oracle, C, R.Divs);
  return R;
}

DiffResult vg::fuzz::diffRunOne(const FuzzProgram &P, const FuzzConfig &C) {
  DiffResult R;
  GuestImage Img = render(P);
  RunReport Oracle = runNative(Img, P.StdinData, OracleMaxInsns);
  if (!Oracle.Completed) {
    R.Divs.push_back({"oracle", "completed", "completed", "did-not-complete"});
    return R;
  }
  runOne(P, Img, Oracle, C, R.Divs);
  return R;
}
