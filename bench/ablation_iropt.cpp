//===-- bench/ablation_iropt.cpp - D&R needs its optimiser (§3.5) ---------==//
///
/// \file
/// Ablation for the paper's central design argument: D&R "requires more
/// development effort — Valgrind's JIT uses a lot of conventional compiler
/// technology", and in exchange "the JIT compiler can optimise analysis
/// code and client code equally well". This bench disables Phase 2
/// (flatten-only, no redundant get/put elimination, no cc-thunk
/// specialisation, no CSE/folding) and measures the damage, with and
/// without Memcheck instrumentation.
///
/// Expected: unoptimised D&R is much slower even for Nulgrind (every guest
/// register read/write really hits the ThreadState; every condition really
/// calls the flags helper), and the gap *widens* under Memcheck, because
/// analysis code "benefits fully from the post-instrumentation optimiser"
/// (§4 R1).
///
//===----------------------------------------------------------------------===//

#include "core/Core.h"
#include "core/Launcher.h"
#include "tools/Memcheck.h"
#include "tools/Nulgrind.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace vg;

namespace {

/// A Nulgrind/Memcheck run with Phase 2 suppressed. There is no public
/// option for this (it is not a supported configuration), so the ablation
/// reaches through TranslationOptions by translating with RunOptimise1
/// off: we emulate by wrapping translateBlock... simplest faithful knob:
/// the core exposes none, so we measure at the pipeline level instead —
/// translate every block of the workload both ways and execute each N
/// times through the raw executor. To keep the comparison end-to-end, we
/// instead add the documented env knob below.
} // namespace

int main() {
  std::printf("== Ablation (Section 3.5): Phase 2 optimisation on/off ==\n");
  std::printf("%-10s %12s %12s %9s   %12s %12s %9s\n", "workload",
              "nulg(opt)", "nulg(raw)", "cost x", "memc(opt)", "memc(raw)",
              "cost x");
  for (const char *Name : {"crafty", "mcf", "equake"}) {
    GuestImage Img = buildWorkload(Name, 1);
    double T[4];
    for (int Cfg = 0; Cfg != 4; ++Cfg) {
      bool WithMc = Cfg >= 2;
      bool Opt = (Cfg & 1) == 0;
      Nulgrind TN;
      Memcheck TM;
      Tool *T0 = WithMc ? static_cast<Tool *>(&TM) : &TN;
      std::vector<std::string> Opts = {"--smc-check=none"};
      if (WithMc)
        Opts.push_back("--leak-check=no");
      if (!Opt)
        Opts.push_back("--no-iropt");
      RunReport R = runUnderCore(Img, T0, Opts);
      T[Cfg] = R.Completed ? R.Seconds : -1;
    }
    std::printf("%-10s %11.3fs %11.3fs %9.2f   %11.3fs %11.3fs %9.2f\n",
                Name, T[0], T[1], T[1] / T[0], T[2], T[3], T[3] / T[2]);
  }
  std::printf("\n(expected: raw D&R — every GET/PUT materialised, every "
              "condition through the flags helper —\n is substantially "
              "slower; \"generating good code at the end requires more "
              "development effort\", §3.5)\n");
  return 0;
}
