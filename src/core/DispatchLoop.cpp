//===-- core/DispatchLoop.cpp - Dispatch and scheduling engine ------------==//

#include "core/DispatchLoop.h"

#include "core/ClientRequestEngine.h"
#include "core/RedirectEngine.h"
#include "core/SignalEngine.h"
#include "shadow/ShadowMemory.h"
#include "support/Hashing.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace vg;
using namespace vg::vg1;

//===----------------------------------------------------------------------===//
// Translation lookup, promotion, and trace formation
//===----------------------------------------------------------------------===//

Translation *DispatchLoop::findOrTranslate(uint32_t PC) {
  if (FastCacheGen != C.TT.generation()) {
    std::fill(FastCache.begin(), FastCache.end(), FastCacheEntry{});
    FastCacheGen = C.TT.generation();
  }
  FastCacheEntry &E = FastCache[hashAddr(PC) & (FastCacheSize - 1)];
  if (E.Addr == PC && E.T) {
    ++C.Stats.FastCacheHits;
    // The table was bypassed, but the lookup still logically happened:
    // fold it into the table's statistics so hit rates stay honest.
    C.TT.countFastHit();
    return E.T;
  }
  ++C.Stats.FastCacheMisses;
  Translation *T = C.TT.lookup(PC);
  if (!T)
    T = C.XS->translateSync(PC, /*Hot=*/false);
  if (FastCacheGen != C.TT.generation()) {
    std::fill(FastCache.begin(), FastCache.end(), FastCacheEntry{});
    FastCacheGen = C.TT.generation();
  }
  FastCache[hashAddr(PC) & (FastCacheSize - 1)] = FastCacheEntry{PC, T};
  return T;
}

Translation *DispatchLoop::promoteHot(uint32_t PC) {
  ++C.Stats.HotPromotions;
  // insert() replaces the cold translation; its predecessors' chain slots
  // are re-parked and relink to the superblock immediately (TransTab's
  // eager waiter resolution), so the hot path re-forms without further
  // dispatcher round-trips.
  using Clock = std::chrono::steady_clock;
  double T0 =
      std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
  Translation *T = C.XS->translateSync(PC, /*Hot=*/true);
  double T1 =
      std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
  C.XS->noteSyncPromotion(T1 - T0);
  return T;
}

void DispatchLoop::promotionInstalled(Translation *T, uint64_t GenBefore) {
  if (T->Tier == 2)
    ++C.Stats.TracesFormed;
  else
    ++C.Stats.HotPromotions;
  if (C.TT.generation() == GenBefore + 1) {
    // Only the replaced tier-1 block died in the insert: repair its
    // fast-cache line surgically, exactly as the inline promotion path
    // does. Any bigger generation jump (an eviction run) lets the
    // generation check wipe the cache wholesale on the next dispatch.
    FastCacheGen = C.TT.generation();
    FastCache[hashAddr(T->Addr) & (FastCacheSize - 1)] =
        FastCacheEntry{T->Addr, T};
  }
}

TraceSpec DispatchLoop::selectTracePath(Translation *Head) {
  // Greedy walk over filled chain slots: at each constituent take the
  // most-traversed outgoing edge, but only while that edge is strongly
  // biased — taken on at least 3/4 of the block's executions. Anything
  // weaker and the guarded side exit replacing the branch would fire
  // constantly, making the trace a net loss. EdgeExecs (not the
  // successor's ExecCount) is the evidence: a successor with other hot
  // predecessors has a large ExecCount even when *this* edge is cold.
  TraceSpec Spec;
  Spec.Entries.push_back(Head->Addr);
  Translation *Cur = Head;
  while (Spec.Entries.size() < C.TraceMaxBlocks) {
    Translation *Best = nullptr;
    uint64_t BestEdge = 0;
    for (size_t I = 0; I != Cur->Chain.size(); ++I) {
      // Acquire pairs with the release install so the successor's fields
      // (Tier, Addr) are visible; the edge counters are approximate
      // profile data, relaxed is all they need.
      Translation *Succ = Cur->Chain[I].load(std::memory_order_acquire);
      uint64_t Edge =
          I < Cur->EdgeExecs.size()
              ? Cur->EdgeExecs[I].load(std::memory_order_relaxed)
              : 0;
      if (Succ && Succ->Tier == 1 && Edge > BestEdge) {
        Best = Succ;
        BestEdge = Edge;
      }
    }
    if (!Best ||
        BestEdge * 4 < Cur->ExecCount.load(std::memory_order_relaxed) * 3)
      break;
    auto It = std::find(Spec.Entries.begin(), Spec.Entries.end(),
                        Best->Addr);
    if (It != Spec.Entries.end()) {
      // Loop closure. A back-edge to the head is the ideal ending: prefer
      // it as the final target so the installed trace chains to itself.
      if (It == Spec.Entries.begin())
        Spec.PreferredFinal = Head->Addr;
      break;
    }
    Spec.Entries.push_back(Best->Addr);
    Cur = Best;
  }
  return Spec;
}

const hvm::CodeBlob *DispatchLoop::chainResolveThunk(void *User, void *Cookie,
                                                     uint32_t Slot) {
  DispatchLoop *D = static_cast<DispatchLoop *>(User);
  Core &C = D->C;
  auto *T = static_cast<Translation *>(Cookie);
  // Side-exit accounting: a tier-2 exit through any slot other than the
  // terminal one means a guarded speculation failed and the trace bailed
  // to a constituent. (Counted here because with chaining on — a trace-
  // formation precondition — every constant Boring exit consults this
  // thunk whether or not the slot is filled.)
  if (T->Tier == 2 && Slot != T->Blob.TerminalChainSlot)
    ++C.Stats.TraceSideExits;
  // Acquire pairs with the release install in TransTab::chainTo: a filled
  // slot must imply a fully-initialised successor blob.
  Translation *Succ = Slot < T->Chain.size()
                          ? T->Chain[Slot].load(std::memory_order_acquire)
                          : nullptr;
  if (!Succ)
    return nullptr;
  // A worker published a superblock: bounce to the dispatcher so it can
  // install at a boundary where nothing is executing inside the code
  // cache (an install may evict translations this very chain is standing
  // on). Always false at --jit-threads=0.
  if (C.XS->hasCompleted())
    return nullptr;
  // Hotness accounting happens here too, or chained loops would never
  // cross the threshold. A successor about to go hot bounces back to the
  // dispatcher, which performs the promotion (retranslation must not run
  // while the executor is inside the chain). A block whose promotion is
  // already queued keeps chaining at tier 1 — bouncing every transfer
  // until the worker finishes would cost more than the stall we avoided.
  if (C.HotThreshold && Succ->Tier == 0 &&
      !Succ->PromoPending.load(std::memory_order_relaxed) &&
      Succ->ExecCount.load(std::memory_order_relaxed) + 1 >=
          C.HotThreshold) {
    // The successor is known — the bounce exists only to run the promotion
    // from dispatcher context. Prefill its fast-cache line so the bounced
    // dispatch doesn't pay a table lookup for a block we are holding.
    if (D->FastCacheGen == C.TT.generation())
      D->FastCache[hashAddr(Succ->Addr) & (FastCacheSize - 1)] =
          FastCacheEntry{Succ->Addr, Succ};
    return nullptr;
  }
  // Same bounce for trace formation: a tier-1 successor crossing the trace
  // threshold returns to the dispatcher, which selects the path and
  // stitches (or enqueues the stitch) there — never from inside a chain.
  // TraceRetryAt keeps a head whose chain graph proved unbiased from
  // bouncing every transfer.
  if (C.TraceTier && Succ->Tier == 1 &&
      !Succ->PromoPending.load(std::memory_order_relaxed) &&
      Succ->ExecCount.load(std::memory_order_relaxed) + 1 >=
          C.effTraceThreshold() &&
      Succ->ExecCount.load(std::memory_order_relaxed) + 1 >=
          Succ->TraceRetryAt.load(std::memory_order_relaxed)) {
    if (D->FastCacheGen == C.TT.generation())
      D->FastCache[hashAddr(Succ->Addr) & (FastCacheSize - 1)] =
          FastCacheEntry{Succ->Addr, Succ};
    return nullptr;
  }
  Succ->ExecCount.fetch_add(1, std::memory_order_relaxed);
  if (Slot < T->EdgeExecs.size())
    T->EdgeExecs[Slot].fetch_add(1, std::memory_order_relaxed);
  ++C.Stats.ChainedTransfers;
  if (Succ->Tier == 2)
    ++C.Stats.TraceExecs;
  if (C.Prof)
    C.Prof->noteExec(Succ->Addr);
  return &Succ->Blob;
}

//===----------------------------------------------------------------------===//
// The serial dispatcher/scheduler (Section 3.9/3.14)
//===----------------------------------------------------------------------===//

void DispatchLoop::dispatchLoop(ThreadState &TS, uint64_t &Quantum,
                                uint32_t StopPC) {
  ExecContext Ctx;
  Ctx.GuestState = TS.Guest;
  Ctx.Mem = &C.Memory;
  Ctx.Core = &C;
  Ctx.Tool = C.ToolPlugin;
  Ctx.ShadowSM = C.ToolPlugin ? C.ToolPlugin->shadowMap() : nullptr;
  Ctx.Tid = TS.Tid;
  hvm::Executor Exec(Ctx, gso::PC);
  if (C.ChainingEnabled)
    Exec.setChaining(&chainResolveThunk, this);

  // Lazy chain-fill fallback (register-constant edges the eager linker
  // could not resolve at insert time never reach here; this catches edges
  // whose slot was parked and has since been cancelled). LastGen guards
  // against the cookie dangling after an eviction.
  void *LastCookie = nullptr;
  uint32_t LastSlot = ~0u;
  uint64_t LastGen = 0;

  while (Quantum > 0 && !C.ProcessExited && !C.FatalSignal &&
         TS.Status == ThreadStatus::Runnable && !YieldRequested) {
    // Publish finished background promotions. Safe exactly here: nothing
    // is executing inside the code cache between Exec.run calls, so the
    // install may evict/replace translations freely. A no-op single
    // atomic load at --jit-threads=0.
    if (C.XS->hasCompleted())
      C.XS->drainCompleted();
    if (C.Faults)
      injectBoundaryFaults(TS);
    if (C.Signals->deliverPending(TS)) {
      // A delivery consumes one slice of the quantum on top of the
      // handler's own blocks (counted by Exec.run like any others), so a
      // signal storm cannot starve the other threads.
      Quantum -= std::min<uint64_t>(Quantum, 1);
      continue; // PC changed; redispatch
    }

    uint32_t PC = TS.getPC();
    if (PC == StopPC)
      return;

    // Function redirection (Section 3.13).
    if (const uint32_t *GR = C.Redirects->guestTarget(PC)) {
      TS.setPCVal(*GR);
      continue;
    }
    if (const HostReplacementFn *HR = C.Redirects->hostReplacement(PC)) {
      ++C.Stats.HostRedirectCalls;
      (*HR)(C, TS);
      // Perform the guest return: pop the address CALL pushed.
      uint32_t SP = TS.gpr(RegSP);
      uint32_t Ret = 0;
      if (C.Memory.read(SP, &Ret, 4, /*IgnorePerms=*/true).Faulted) {
        C.Signals->handleFault(TS, PC, SP, false, SigSEGV);
        continue;
      }
      TS.setGpr(RegSP, SP + 4);
      TS.setPCVal(Ret);
      LastCookie = nullptr;
      continue;
    }

    Translation *T = findOrTranslate(PC);

    // Fill the previous exit's chain slot now that the successor is known.
    // Safe only if no eviction ran since the exit (the cookie would dangle).
    if (C.ChainingEnabled && LastCookie && LastSlot != ~0u &&
        C.TT.generation() == LastGen) {
      auto *Prev = static_cast<Translation *>(LastCookie);
      // Only link true fall-through edges: if the exit's recorded constant
      // target is not the PC we dispatched (a guest redirect rewrote it),
      // chaining would bypass the dispatcher's redirect check.
      if (LastSlot < Prev->Blob.ChainTargets.size() &&
          Prev->Blob.ChainTargets[LastSlot] == PC) {
        C.TT.chainTo(Prev, LastSlot, T);
        // A dispatcher-mediated traversal of this edge (unfilled slot or a
        // thunk bounce) is edge-profile evidence just like a chained one.
        if (LastSlot < Prev->EdgeExecs.size())
          Prev->EdgeExecs[LastSlot].fetch_add(1, std::memory_order_relaxed);
      }
    }
    LastCookie = nullptr;
    LastSlot = ~0u;

    // Hotness tier: promote once a block has proven itself.
    uint64_t Execs = T->ExecCount.fetch_add(1, std::memory_order_relaxed) + 1;
    if (T->Tier == 2)
      ++C.Stats.TraceExecs;
    if (C.Prof)
      C.Prof->noteExec(PC);
    if (C.HotThreshold && T->Tier == 0 &&
        !T->PromoPending.load(std::memory_order_relaxed) &&
        Execs >= C.HotThreshold) {
      if (Translation *CT = C.XS->asyncEnabled() ? C.XS->promoteFromCache(PC)
                                                 : nullptr) {
        // Persistent-cache hit: the superblock was installed synchronously,
        // replacing the tier-1 translation we were about to execute — the
        // old T is dead memory now, so continue with the replacement.
        // (At --jit-threads=0 the inline promoteHot path below consults
        // the cache itself inside translateSync.)
        T = CT;
      } else if (C.XS->asyncEnabled() && C.XS->enqueuePromotion(T)) {
        // The promotion compiles in the background; keep executing the
        // tier-1 translation and install the superblock at a later
        // boundary. No stall taken here — that is the whole point.
      } else {
        uint64_t GenBefore = C.TT.generation();
        T = promoteHot(PC);
        if (C.TT.generation() == GenBefore + 1) {
          // Only the replaced translation died: repair its fast-cache line
          // surgically instead of letting the generation check wipe the
          // whole cache (every other entry still points at live memory).
          FastCacheGen = C.TT.generation();
          FastCache[hashAddr(PC) & (FastCacheSize - 1)] =
              FastCacheEntry{PC, T};
        }
      }
    }

    // Trace tier: a tier-1 superblock whose chain edges have proven
    // strongly biased gets its dominant path stitched into one trace.
    // Requires chaining (the chain graph is both the evidence and the
    // profit mechanism) and runs only at this boundary — never inside a
    // chain, where an install could evict code being executed.
    // Re-read the exec count: the promotion above may have replaced T.
    uint64_t TExecs = T->ExecCount.load(std::memory_order_relaxed);
    if (C.TraceTier && C.ChainingEnabled && T->Tier == 1 &&
        !T->PromoPending.load(std::memory_order_relaxed) &&
        TExecs >= C.effTraceThreshold() &&
        TExecs >= T->TraceRetryAt.load(std::memory_order_relaxed)) {
      TraceSpec Spec = selectTracePath(T);
      if (Spec.Entries.size() < 2) {
        // No dominant successor: the chain graph is unbiased at the head.
        // Back off exponentially rather than re-walking it every entry.
        T->TraceRetryAt.store(TExecs * 2, std::memory_order_relaxed);
      } else if (C.XS->asyncEnabled()) {
        // Queued (PromoPending stops re-requests) or queue-full (retry on
        // a later entry — no stall, no backoff; the bias only grows).
        C.XS->enqueueTrace(T, Spec);
      } else if (Translation *NT = C.XS->translateTrace(Spec)) {
        T = NT; // the old T was replaced by the insert: run the trace now
      } else {
        // spill overflow: back off
        T->TraceRetryAt.store(TExecs * 2, std::memory_order_relaxed);
      }
    }

    // The chain budget is Quantum - 1 (this dispatch itself is one block);
    // guard the subtraction — delivery charges above can leave the quantum
    // at 0 exactly when a continue re-entered the loop through a path that
    // does not re-test it.
    uint64_t ChainBudget =
        (C.ChainingEnabled && Quantum > 0) ? Quantum - 1 : 0;
    hvm::RunOutcome O = Exec.run(T->Blob, ChainBudget);
    C.Stats.BlocksDispatched += O.BlocksExecuted;
    Quantum -= std::min<uint64_t>(Quantum, O.BlocksExecuted);

    if (O.K == hvm::RunOutcome::Kind::Fault) {
      C.Signals->handleFault(TS, O.FaultPC, O.FaultAddr, O.FaultWrite,
                             SigSEGV);
      continue;
    }

    switch (O.JK) {
    case ir::JumpKind::Boring:
      LastCookie = O.ExitCookie;
      LastSlot = O.ExitSlot;
      LastGen = C.TT.generation();
      continue;
    case ir::JumpKind::Call:
    case ir::JumpKind::Ret:
      continue;
    case ir::JumpKind::Syscall: {
      SimKernel::Action A = C.Kernel->onSyscall(TS);
      if (A == SimKernel::Action::Exit) {
        C.ProcessExited = true;
        C.ProcessExitCode = C.Kernel->exitCode();
        stopWorld();
      }
      continue;
    }
    case ir::JumpKind::ClientReq:
      C.ClReqs->handle(TS);
      continue;
    case ir::JumpKind::Yield:
      Quantum = 0;
      continue;
    case ir::JumpKind::Exit:
      C.ProcessExited = true;
      stopWorld();
      continue;
    case ir::JumpKind::NoDecode:
      C.Signals->handleFault(TS, O.NextPC, O.NextPC, false, SigILL);
      continue;
    case ir::JumpKind::SmcFail: {
      // Stale translation: throw it (and anything else over those bytes)
      // away and retranslate. PC is unchanged.
      ++C.Stats.SmcRetranslations;
      for (auto [Lo, Hi] : T->Extents)
        C.XS->invalidate(Lo, Hi - Lo);
      continue;
    }
    case ir::JumpKind::SigSEGV:
      C.Signals->handleFault(TS, O.NextPC, O.NextPC, false, SigSEGV);
      continue;
    }
  }
}

void DispatchLoop::injectBoundaryFaults(ThreadState &TS) {
  // Signal storm: queue one of the signals the client installed a handler
  // for, as if another process had just kill()ed us at this block boundary.
  if (C.Faults->roll(FaultKind::SigStorm)) {
    const std::array<uint32_t, 64> &Handlers = C.Signals->handlers();
    int Installed[64];
    int Count = 0;
    for (int S = 1; S < 64; ++S)
      if (Handlers[S])
        Installed[Count++] = S;
    if (Count) {
      int Sig = Installed[C.Faults->pick(static_cast<uint32_t>(Count))];
      if (C.Events.FaultInjected)
        C.Events.FaultInjected(TS.Tid,
                               static_cast<uint32_t>(FaultKind::SigStorm),
                               static_cast<uint32_t>(Sig));
      C.Signals->raise(TS.Tid, Sig);
    }
  }
  // Translation-table flush pressure: everything retranslates from here.
  if (C.Faults->roll(FaultKind::TTFlush)) {
    if (C.Events.FaultInjected)
      C.Events.FaultInjected(TS.Tid, static_cast<uint32_t>(FaultKind::TTFlush),
                             0);
    // Whole-space flush. Not invalidate(0, 0xFFFFFFFFu): a 32-bit length
    // cannot express the full 4GB and left translations covering the final
    // guest byte alive.
    C.XS->invalidateAll();
  }
}

CoreExit DispatchLoop::run(uint64_t MaxBlocks) {
  if (C.SchedThreads > 1)
    return runParallel(MaxBlocks);
  while (!C.ProcessExited && !C.FatalSignal && C.liveThreads() > 0 &&
         C.Stats.BlocksDispatched < MaxBlocks) {
    // Round-robin thread choice (the serialised big lock of Section 3.14:
    // exactly one thread ever runs).
    int Next = -1;
    for (int I = 1; I <= Core::MaxThreads; ++I) {
      int Cand = (C.CurTid + I) % Core::MaxThreads;
      if (C.Threads[Cand].Status == ThreadStatus::Runnable) {
        Next = Cand;
        break;
      }
    }
    if (Next < 0)
      break;
    if (Next != C.CurTid) {
      ++C.Stats.ThreadSwitches;
      if (C.Tracer)
        C.Tracer->record(Next, TraceEvent::ThreadSwitch,
                         static_cast<uint32_t>(C.CurTid),
                         static_cast<uint32_t>(Next));
    }
    C.CurTid = Next;
    YieldRequested = false;
    uint64_t Quantum = std::min<uint64_t>(
        Core::ThreadQuantum, MaxBlocks - C.Stats.BlocksDispatched);
    // Forced preemption: shrink this slice to a single block, shaking out
    // scheduling assumptions the 100k-block quantum normally hides.
    if (C.Faults && Quantum > 1 && C.Faults->roll(FaultKind::Preempt)) {
      if (C.Events.FaultInjected)
        C.Events.FaultInjected(C.CurTid,
                               static_cast<uint32_t>(FaultKind::Preempt), 1);
      Quantum = 1;
    }
    dispatchLoop(C.Threads[C.CurTid], Quantum, /*StopPC=*/0xFFFFFFFF);
  }

  return C.finishRun();
}

//===----------------------------------------------------------------------===//
// The sharded scheduler (--sched-threads=N, DESIGN section 14)
//===----------------------------------------------------------------------===//
//
// The serial scheduler above *is* the big lock of Section 3.14: one host
// thread, one guest thread at a time. runParallel breaks it: N host
// "shards" each pop a runnable guest thread from the run queue and execute
// one quantum concurrently. The big lock survives in miniature as WorldMu,
// held only for block-boundary slow work (translate, chain, promote,
// signals, syscalls, client requests); Exec.run and the chain-resolve
// thunk — where virtually all time goes for a CPU-bound guest — run with
// no lock at all.
//
// Memory reclamation is the crux. A shard executing inside the code cache
// holds raw Translation pointers no lock protects, so nothing another
// shard invalidates may be freed while it could still be running. The
// scheme is quiescent-state-based: each shard, at the top of every
// dispatch iteration (provably outside all translations), republishes the
// global epoch as its LocalEpoch; retiring a translation stamps it with a
// freshly incremented epoch and parks it in Limbo; a limbo entry is freed
// once every shard has announced an epoch at or past its stamp. A parked
// shard announces ~0 (it holds nothing). The same deferred-destruction
// idea covers guest pages and shadow chunks via their graveyards.

CoreExit DispatchLoop::runParallel(uint64_t MaxBlocks) {
  MaxBlocksMT = MaxBlocks;
  // Unmapped guest pages and reclaimed shadow chunks must survive until
  // the run ends: lock-free readers (helpers, other shards' Exec.run) may
  // still be dereferencing them.
  C.Memory.setDeferredReclaim(true);
  if (ShadowMap *SM = C.ToolPlugin ? C.ToolPlugin->shadowMap() : nullptr)
    SM->setDeferredReclaim(true);
  C.TT.setRetireHook([this](std::unique_ptr<Translation> T) {
    retireTranslation(std::move(T));
  });
  if (C.Tracer)
    C.Tracer->setAtomicClock(&GlobalBlockClock);

  RunQ = std::make_unique<RunQueue>();
  for (int I = 0; I != Core::MaxThreads; ++I)
    if (C.Threads[I].Status == ThreadStatus::Runnable)
      RunQ->push(I);

  Shards.clear();
  for (unsigned I = 0; I != C.SchedThreads; ++I) {
    auto S = std::make_unique<ShardCtx>();
    S->C = &C;
    S->D = this;
    S->Index = I;
    S->FastCache.resize(FastCacheSize);
    Shards.push_back(std::move(S));
  }
  {
    std::vector<std::thread> Workers;
    Workers.reserve(C.SchedThreads);
    for (auto &S : Shards)
      Workers.emplace_back([this, &S] { shardMain(*S); });
    for (auto &W : Workers)
      W.join();
  }

  // Single-threaded again: merge the shards' lock-free counters, settle
  // the block clock, and drain what the grace periods held back.
  for (auto &S : Shards) {
    C.Stats.ChainedTransfers += S->ChainedTransfers;
    C.Stats.TraceExecs += S->TraceExecs;
    C.Stats.TraceSideExits += S->TraceSideExits;
  }
  C.Stats.BlocksDispatched = GlobalBlockClock.load(std::memory_order_relaxed);
  RunQPushes = RunQ->pushes();
  RunQPops = RunQ->pops();
  RunQWaits = RunQ->waits();
  C.TT.setRetireHook({});
  Limbo.clear();
  RunQ.reset();
  return C.finishRun();
}

void DispatchLoop::shardMain(ShardCtx &S) {
  while (true) {
    // Parked: this shard holds no translation pointers and blocks no
    // reclamation.
    S.LocalEpoch.store(~0ull, std::memory_order_release);
    int Tid = RunQ->pop();
    if (Tid == RunQueue::Shutdown)
      return;
    ++S.Quanta;
    dispatchLoopMT(S, C.Threads[Tid]);
    S.LocalEpoch.store(~0ull, std::memory_order_release);
    if (C.ProcessExited.load(std::memory_order_acquire) ||
        C.FatalSignal.load(std::memory_order_acquire)) {
      RunQ->shutdown();
      return;
    }
    if (GlobalBlockClock.load(std::memory_order_relaxed) >= MaxBlocksMT) {
      RunQ->shutdown();
      return;
    }
    if (C.Threads[Tid].Status == ThreadStatus::Runnable)
      RunQ->push(Tid);
  }
}

void DispatchLoop::dispatchLoopMT(ShardCtx &S, ThreadState &TS) {
  ExecContext Ctx;
  Ctx.GuestState = TS.Guest;
  Ctx.Mem = &C.Memory;
  Ctx.Core = &C;
  Ctx.Tool = C.ToolPlugin;
  Ctx.ShadowSM = C.ToolPlugin ? C.ToolPlugin->shadowMap() : nullptr;
  Ctx.Tid = TS.Tid;
  hvm::Executor Exec(Ctx, gso::PC);
  if (C.ChainingEnabled)
    Exec.setChaining(&chainResolveThunkMT, &S);

  YieldFlags[TS.Tid].store(false, std::memory_order_relaxed);
  uint64_t Clock = GlobalBlockClock.load(std::memory_order_relaxed);
  uint64_t Quantum = std::min<uint64_t>(
      Core::ThreadQuantum, MaxBlocksMT - std::min(MaxBlocksMT, Clock));

  void *LastCookie = nullptr;
  uint32_t LastSlot = ~0u;
  uint32_t LastAddr = 0;

  while (Quantum > 0 && !C.ProcessExited.load(std::memory_order_acquire) &&
         !C.FatalSignal.load(std::memory_order_acquire) &&
         TS.Status == ThreadStatus::Runnable &&
         !YieldFlags[TS.Tid].load(std::memory_order_relaxed)) {
    // Quiescent point: between Exec.run calls this shard holds no
    // translation pointer except LastCookie — and that one is only ever
    // dereferenced after the residency check below proves the table still
    // maps LastAddr to this exact pointer.
    S.LocalEpoch.store(GlobalEpoch.load(std::memory_order_acquire),
                       std::memory_order_release);

    Translation *T;
    {
      std::lock_guard<std::mutex> World(WorldMu);
      ++S.WorldLockAcquisitions;
      if (C.XS->hasCompleted())
        C.XS->drainCompleted();
      if (C.Faults)
        injectBoundaryFaults(TS);
      if (C.Signals->deliverPending(TS)) {
        Quantum -= std::min<uint64_t>(Quantum, 1);
        continue;
      }

      uint32_t PC = TS.getPC();
      if (const uint32_t *GR = C.Redirects->guestTarget(PC)) {
        TS.setPCVal(*GR);
        continue;
      }
      if (const HostReplacementFn *HR = C.Redirects->hostReplacement(PC)) {
        ++C.Stats.HostRedirectCalls;
        // The replacement body runs under the world lock, including any
        // callGuest re-entry (which uses the serial dispatchLoop and the
        // core's own fast cache — both world-lock property in MT). Host
        // replacements are slow-path by contract.
        (*HR)(C, TS);
        uint32_t SP = TS.gpr(RegSP);
        uint32_t Ret = 0;
        if (C.Memory.read(SP, &Ret, 4, /*IgnorePerms=*/true).Faulted) {
          C.Signals->handleFault(TS, PC, SP, false, SigSEGV);
          continue;
        }
        TS.setGpr(RegSP, SP + 4);
        TS.setPCVal(Ret);
        LastCookie = nullptr;
        continue;
      }

      T = findOrTranslateMT(S, PC);

      // Lazy chain-fill, exactly as in the serial loop — but the serial
      // loop's generation check is NOT sufficient proof here that
      // LastCookie still points at a live translation. Another shard can
      // retire the very translation this shard is executing (promotion
      // install, eviction, SMC flush) *before* the Boring exit saves the
      // cookie, so the saved generation already includes that retirement
      // and the compare passes on a limbo'd — soon freed — object. Worse
      // than the dangling read: chaining through such a cookie injects a
      // back-edge from a retired translation into the live chain graph,
      // which unlinkChains later re-parks as a waiter whose From is freed
      // memory. Instead, re-validate residency by address: the cookie is
      // live iff the table still maps LastAddr to this exact pointer
      // (pointer compare only — no dereference until it passes).
      if (C.ChainingEnabled && LastCookie && LastSlot != ~0u &&
          C.TT.find(LastAddr) == LastCookie) {
        auto *Prev = static_cast<Translation *>(LastCookie);
        if (LastSlot < Prev->Blob.ChainTargets.size() &&
            Prev->Blob.ChainTargets[LastSlot] == PC) {
          C.TT.chainTo(Prev, LastSlot, T);
          if (LastSlot < Prev->EdgeExecs.size())
            Prev->EdgeExecs[LastSlot].fetch_add(1, std::memory_order_relaxed);
        }
      }
      LastCookie = nullptr;
      LastSlot = ~0u;

      uint64_t Execs =
          T->ExecCount.fetch_add(1, std::memory_order_relaxed) + 1;
      if (T->Tier == 2)
        ++C.Stats.TraceExecs;
      if (C.Prof)
        C.Prof->noteExec(PC);
      if (C.HotThreshold && T->Tier == 0 &&
          !T->PromoPending.load(std::memory_order_relaxed) &&
          Execs >= C.HotThreshold) {
        if (Translation *CT = C.XS->asyncEnabled()
                                  ? C.XS->promoteFromCache(PC)
                                  : nullptr) {
          T = CT;
        } else if (C.XS->asyncEnabled() && C.XS->enqueuePromotion(T)) {
          // Background promotion; keep running tier 1.
        } else {
          uint64_t GenBefore = C.TT.generation();
          T = promoteHot(PC);
          if (C.TT.generation() == GenBefore + 1) {
            // Surgical repair of this shard's own line (the serial loop's
            // trick); other shards see the generation bump and wipe.
            S.FastCacheGen = C.TT.generation();
            S.FastCache[hashAddr(PC) & (FastCacheSize - 1)] =
                FastCacheEntry{PC, T};
          }
        }
      }

      uint64_t TExecs = T->ExecCount.load(std::memory_order_relaxed);
      if (C.TraceTier && C.ChainingEnabled && T->Tier == 1 &&
          !T->PromoPending.load(std::memory_order_relaxed) &&
          TExecs >= C.effTraceThreshold() &&
          TExecs >= T->TraceRetryAt.load(std::memory_order_relaxed)) {
        TraceSpec Spec = selectTracePath(T);
        if (Spec.Entries.size() < 2) {
          T->TraceRetryAt.store(TExecs * 2, std::memory_order_relaxed);
        } else if (C.XS->asyncEnabled()) {
          C.XS->enqueueTrace(T, Spec);
        } else if (Translation *NT = C.XS->translateTrace(Spec)) {
          T = NT;
        } else {
          T->TraceRetryAt.store(TExecs * 2, std::memory_order_relaxed);
        }
      }
    } // WorldMu released — everything below runs lock-free.

    uint64_t ChainBudget = (C.ChainingEnabled && Quantum > 0) ? Quantum - 1 : 0;
    hvm::RunOutcome O = Exec.run(T->Blob, ChainBudget);
    GlobalBlockClock.fetch_add(O.BlocksExecuted, std::memory_order_relaxed);
    Quantum -= std::min<uint64_t>(Quantum, O.BlocksExecuted);

    if (O.K == hvm::RunOutcome::Kind::Fault) {
      std::lock_guard<std::mutex> World(WorldMu);
      ++S.WorldLockAcquisitions;
      C.Signals->handleFault(TS, O.FaultPC, O.FaultAddr, O.FaultWrite,
                             SigSEGV);
      continue;
    }

    switch (O.JK) {
    case ir::JumpKind::Boring:
      LastCookie = O.ExitCookie;
      LastSlot = O.ExitSlot;
      // Dereferencing the cookie is safe HERE and only here: the chain
      // pointer that led to this translation was still live after this
      // quantum's epoch announcement, so even a mid-quantum retirement
      // cannot reclaim its memory before this shard next announces. The
      // address is what the next iteration's residency check keys on.
      LastAddr = static_cast<Translation *>(LastCookie)->Addr;
      continue;
    case ir::JumpKind::Call:
    case ir::JumpKind::Ret:
      continue;
    case ir::JumpKind::Syscall: {
      std::lock_guard<std::mutex> World(WorldMu);
      ++S.WorldLockAcquisitions;
      SimKernel::Action A = C.Kernel->onSyscall(TS);
      if (A == SimKernel::Action::Exit) {
        C.ProcessExited.store(true, std::memory_order_release);
        C.ProcessExitCode = C.Kernel->exitCode();
        stopWorld();
      }
      continue;
    }
    case ir::JumpKind::ClientReq: {
      // Client requests take the world lock exactly like syscalls: they
      // mutate world-lock property (translation tables, the registered-
      // stack list, the replacement heap, tool state).
      std::lock_guard<std::mutex> World(WorldMu);
      ++S.WorldLockAcquisitions;
      C.ClReqs->handle(TS);
      continue;
    }
    case ir::JumpKind::Yield:
      Quantum = 0;
      continue;
    case ir::JumpKind::Exit: {
      std::lock_guard<std::mutex> World(WorldMu);
      ++S.WorldLockAcquisitions;
      C.ProcessExited.store(true, std::memory_order_release);
      stopWorld();
      continue;
    }
    case ir::JumpKind::NoDecode: {
      std::lock_guard<std::mutex> World(WorldMu);
      ++S.WorldLockAcquisitions;
      C.Signals->handleFault(TS, O.NextPC, O.NextPC, false, SigILL);
      continue;
    }
    case ir::JumpKind::SmcFail: {
      std::lock_guard<std::mutex> World(WorldMu);
      ++S.WorldLockAcquisitions;
      ++C.Stats.SmcRetranslations;
      for (auto [Lo, Hi] : T->Extents)
        C.XS->invalidate(Lo, Hi - Lo);
      continue;
    }
    case ir::JumpKind::SigSEGV: {
      std::lock_guard<std::mutex> World(WorldMu);
      ++S.WorldLockAcquisitions;
      C.Signals->handleFault(TS, O.NextPC, O.NextPC, false, SigSEGV);
      continue;
    }
    }
  }
}

Translation *DispatchLoop::findOrTranslateMT(ShardCtx &S, uint32_t PC) {
  // A block boundary under the lock is the natural place to try freeing
  // limbo: every shard passes through here constantly.
  if (!Limbo.empty())
    reclaimLimbo();
  if (S.FastCacheGen != C.TT.generation()) {
    std::fill(S.FastCache.begin(), S.FastCache.end(), FastCacheEntry{});
    S.FastCacheGen = C.TT.generation();
  }
  FastCacheEntry &E = S.FastCache[hashAddr(PC) & (FastCacheSize - 1)];
  if (E.Addr == PC && E.T) {
    ++C.Stats.FastCacheHits;
    C.TT.countFastHit();
    return E.T;
  }
  ++C.Stats.FastCacheMisses;
  Translation *T = C.TT.lookup(PC);
  if (!T)
    T = C.XS->translateSync(PC, /*Hot=*/false);
  if (S.FastCacheGen != C.TT.generation()) {
    std::fill(S.FastCache.begin(), S.FastCache.end(), FastCacheEntry{});
    S.FastCacheGen = C.TT.generation();
  }
  S.FastCache[hashAddr(PC) & (FastCacheSize - 1)] = FastCacheEntry{PC, T};
  return T;
}

const hvm::CodeBlob *DispatchLoop::chainResolveThunkMT(void *User,
                                                       void *Cookie,
                                                       uint32_t Slot) {
  // The lock-free twin of chainResolveThunk: same decisions, but all
  // counter traffic goes to the shard (merged after join) and the bounce
  // prefills the shard's private fast cache. No profiler attribution —
  // that map is world-lock property.
  auto *S = static_cast<ShardCtx *>(User);
  Core *C = S->C;
  auto *T = static_cast<Translation *>(Cookie);
  if (T->Tier == 2 && Slot != T->Blob.TerminalChainSlot)
    ++S->TraceSideExits;
  Translation *Succ = Slot < T->Chain.size()
                          ? T->Chain[Slot].load(std::memory_order_acquire)
                          : nullptr;
  if (!Succ)
    return nullptr;
  if (C->XS->hasCompleted())
    return nullptr; // bounce: publish finished promotions at the boundary
  if (C->HotThreshold && Succ->Tier == 0 &&
      !Succ->PromoPending.load(std::memory_order_relaxed) &&
      Succ->ExecCount.load(std::memory_order_relaxed) + 1 >=
          C->HotThreshold) {
    if (S->FastCacheGen == C->TT.generation())
      S->FastCache[hashAddr(Succ->Addr) & (FastCacheSize - 1)] =
          FastCacheEntry{Succ->Addr, Succ};
    return nullptr; // bounce: promotion decisions are made under the lock
  }
  if (C->TraceTier && Succ->Tier == 1 &&
      !Succ->PromoPending.load(std::memory_order_relaxed)) {
    uint64_t E = Succ->ExecCount.load(std::memory_order_relaxed) + 1;
    if (E >= C->effTraceThreshold() &&
        E >= Succ->TraceRetryAt.load(std::memory_order_relaxed)) {
      if (S->FastCacheGen == C->TT.generation())
        S->FastCache[hashAddr(Succ->Addr) & (FastCacheSize - 1)] =
            FastCacheEntry{Succ->Addr, Succ};
      return nullptr; // bounce: trace formation too
    }
  }
  Succ->ExecCount.fetch_add(1, std::memory_order_relaxed);
  if (Slot < T->EdgeExecs.size())
    T->EdgeExecs[Slot].fetch_add(1, std::memory_order_relaxed);
  ++S->ChainedTransfers;
  if (Succ->Tier == 2)
    ++S->TraceExecs;
  return &Succ->Blob;
}

void DispatchLoop::retireTranslation(std::unique_ptr<Translation> T) {
  // Unlink-from-table and chain-unlink already happened (under WorldMu);
  // the increment publishes "this translation was dead by epoch E". A
  // shard that later announces an epoch >= E read the counter after the
  // unlink, so it can only have found the translation through a stale
  // pointer it no longer holds at its next quiescent point.
  uint64_t E = GlobalEpoch.fetch_add(1, std::memory_order_acq_rel) + 1;
  Limbo.emplace_back(E, std::move(T));
  ++TranslationsRetired;
  LimboHighWater = std::max<uint64_t>(LimboHighWater, Limbo.size());
  reclaimLimbo();
}

void DispatchLoop::reclaimLimbo() {
  uint64_t MinE = ~0ull;
  for (auto &S : Shards)
    MinE = std::min(MinE, S->LocalEpoch.load(std::memory_order_acquire));
  std::erase_if(Limbo, [&](const auto &Ent) { return Ent.first <= MinE; });
}

void DispatchLoop::stopWorld() {
  if (RunQ)
    RunQ->shutdown();
}

void DispatchLoop::threadSpawned(int Tid) {
  // Under the sharded scheduler the new thread must enter the run queue
  // or no shard would ever pick it up (the serial scheduler's round-robin
  // scan finds it by polling Threads[] instead).
  if (RunQ)
    RunQ->push(Tid);
}

void DispatchLoop::requestYield(int Tid) {
  // Both flags: the serial scheduler tests YieldRequested (kept so its
  // decisions are bit-for-bit what they always were), each shard tests its
  // own thread's bit.
  YieldRequested = true;
  if (Tid >= 0 && Tid < Core::MaxThreads)
    YieldFlags[Tid].store(true, std::memory_order_relaxed);
}

uint32_t DispatchLoop::callGuest(ThreadState &TS, uint32_t Addr,
                                 const std::vector<uint32_t> &Args) {
  // Save the registers the call clobbers.
  uint32_t SavedPC = TS.getPC();
  uint32_t SavedRegs[NumGPRs];
  for (unsigned I = 0; I != NumGPRs; ++I)
    SavedRegs[I] = TS.gpr(I);

  uint32_t SP = TS.gpr(RegSP) - 4;
  C.Memory.write(SP, &ReturnSentinel, 4, /*IgnorePerms=*/true);
  if (C.Events.NewMemStack)
    C.Events.NewMemStack(SP, 4);
  if (C.Events.PostMemWrite)
    C.Events.PostMemWrite(TS.Tid, SP, 4);
  TS.TrackedSP = SP;
  TS.setGpr(RegSP, SP);
  for (size_t I = 0; I != Args.size() && I < 5; ++I)
    TS.setGpr(static_cast<unsigned>(1 + I), Args[I]);
  // As in SignalEngine::deliver: the core set SP and the argument
  // registers, so definedness tools must see them as written.
  if (C.Events.PostRegWrite) {
    C.Events.PostRegWrite(TS.Tid, gso::gpr(RegSP), 4);
    for (size_t I = 0; I != Args.size() && I < 5; ++I)
      C.Events.PostRegWrite(TS.Tid, gso::gpr(static_cast<unsigned>(1 + I)),
                            4);
  }
  TS.setPCVal(Addr);

  uint64_t Quantum = ~0ull >> 1;
  dispatchLoop(TS, Quantum, ReturnSentinel);
  uint32_t Result = TS.gpr(0);

  for (unsigned I = 0; I != NumGPRs; ++I)
    TS.setGpr(I, SavedRegs[I]);
  TS.setPCVal(SavedPC);
  return Result;
}

//===----------------------------------------------------------------------===//
// The --profile report
//===----------------------------------------------------------------------===//

void DispatchLoop::dumpProfile() {
  if (!C.Prof)
    return;
  const TransTab::Stats &TS = C.TT.stats();
  ProfCounters PC;
  PC.BlocksDispatched = C.Stats.BlocksDispatched;
  PC.DispatcherEntries = C.Stats.BlocksDispatched - C.Stats.ChainedTransfers;
  PC.FastCacheHits = C.Stats.FastCacheHits;
  PC.FastCacheMisses = C.Stats.FastCacheMisses;
  PC.ChainedTransfers = C.Stats.ChainedTransfers;
  PC.Translations = C.Stats.Translations;
  PC.HotPromotions = C.Stats.HotPromotions;
  PC.TableLookups = TS.Lookups;
  PC.TableHits = TS.Hits;
  PC.ChainsFilled = TS.ChainsFilled;
  PC.Unchains = TS.Unchains;
  PC.EvictionRuns = TS.EvictionRuns;
  PC.Evicted = TS.Evicted;
  PC.Invalidated = TS.Invalidated;
  if (ShadowMap *SM = C.ToolPlugin ? C.ToolPlugin->shadowMap() : nullptr) {
    const ShadowStats &SS = SM->stats();
    PC.HasShadow = true;
    PC.ShadowFastLoads = SS.FastLoads;
    PC.ShadowSlowLoads = SS.SlowLoads;
    PC.ShadowFastStores = SS.FastStores;
    PC.ShadowSlowStores = SS.SlowStores;
    PC.ShadowSecCacheHits = SS.SecCacheHits;
    PC.ShadowSecCacheMisses = SS.SecCacheMisses;
    PC.ShadowChunksMaterialised = SS.Materialised;
    PC.ShadowChunksReclaimed = SS.Reclaimed;
    PC.ShadowChunksLive = SS.LiveChunks;
    PC.ShadowChunksHighWater = SS.HighWater;
  }
  PC.ThreadSwitches = C.Stats.ThreadSwitches;
  PC.SignalsDelivered = C.Stats.SignalsDelivered;
  PC.SignalsDropped = C.Stats.SignalsDropped;
  if (C.Faults) {
    PC.HasFaults = true;
    PC.FaultRolls = C.Faults->rolls();
    for (unsigned I = 0; I != NumFaultKinds; ++I) {
      PC.FaultsInjected[I] = C.Faults->injected(static_cast<FaultKind>(I));
      PC.FaultNames[I] = faultKindName(static_cast<FaultKind>(I));
    }
  }
  if (C.XS->jitThreads() > 0) {
    const JitStats &J = C.XS->jitStats();
    PC.HasJit = true;
    PC.JitThreads = C.XS->jitThreads();
    PC.JitQueueDepth = C.XS->queueDepth();
    PC.AsyncRequests = J.AsyncRequests;
    PC.AsyncCompleted = J.AsyncCompleted;
    PC.AsyncInstalled = J.AsyncInstalled;
    PC.AsyncDiscardedEpoch = J.AsyncDiscardedEpoch;
    PC.AsyncDiscardedStale = J.AsyncDiscardedStale;
    PC.AsyncAbandoned = J.AsyncAbandoned;
    PC.QueueFullFallbacks = J.QueueFullFallbacks;
    PC.WorkerFailures = J.WorkerFailures;
    PC.QueueHighWater = J.QueueHighWater;
    PC.SyncPromotions = J.SyncPromotions;
    PC.InstallLatencySeconds = J.InstallLatencySeconds;
    PC.SyncPromoStallSeconds = J.SyncPromoStallSeconds;
    PC.EnqueueSeconds = J.EnqueueSeconds;
  }
  if (C.TraceTier) {
    const JitStats &J = C.XS->jitStats();
    PC.HasTraces = true;
    PC.TraceRequests = J.TraceRequests;
    PC.TracesFormed = C.Stats.TracesFormed;
    PC.TraceAborts = J.TraceAborts;
    PC.TraceExecs = C.Stats.TraceExecs;
    PC.TraceSideExits = C.Stats.TraceSideExits;
    PC.TraceDeadFlagPuts = J.TraceDeadFlagPuts;
    PC.TraceProbesCSEd = J.TraceProbesCSEd;
  }
  if (const TransCache *TC = C.XS->cache()) {
    const JitStats &J = C.XS->jitStats();
    PC.HasTransCache = true;
    PC.CacheHits = J.CacheHits;
    PC.CacheMisses = J.CacheMisses;
    PC.CacheRejects = J.CacheRejects;
    PC.CacheWrites = J.CacheWrites;
    PC.CacheEvictedFiles = TC->evictedFiles();
    PC.CacheDirBytes = TC->totalBytes();
    PC.CacheLoadSeconds = J.CacheLoadSeconds;
    PC.CacheStoreSeconds = J.CacheStoreSeconds;
  }
  if (const TransServerClient *SC = C.XS->server()) {
    const JitStats &J = C.XS->jitStats();
    PC.HasTransServer = true;
    PC.ServerRequests = J.ServerRequests;
    PC.ServerHits = J.ServerHits;
    PC.ServerMisses = J.ServerMisses;
    PC.ServerRejects = J.ServerRejects;
    PC.ServerTimeouts = J.ServerTimeouts;
    PC.ServerRetries = J.ServerRetries;
    PC.ServerFallbacks = J.ServerFallbacks;
    PC.ServerWrites = J.ServerWrites;
    PC.ServerBytesFetched = J.ServerBytesFetched;
    PC.ServerBytesSent = J.ServerBytesSent;
    PC.ServerFetchSeconds = J.ServerFetchSeconds;
    PC.ServerAlive = SC->alive();
  }
  if (C.SchedThreads > 1) {
    PC.HasSched = true;
    PC.SchedThreads = C.SchedThreads;
    for (const auto &S : Shards) {
      PC.SchedQuanta += S->Quanta;
      PC.WorldLockAcquisitions += S->WorldLockAcquisitions;
    }
    PC.RunQueuePushes = RunQPushes;
    PC.RunQueuePops = RunQPops;
    PC.RunQueueWaits = RunQWaits;
    PC.TranslationsRetired = TranslationsRetired;
    PC.LimboHighWater = LimboHighWater;
  }
  if (C.Tracer) {
    PC.HasTrace = true;
    PC.TraceRecorded = C.Tracer->recorded();
    PC.TraceDropped = C.Tracer->dropped();
    PC.TraceSyscalls = C.Tracer->count(TraceEvent::SyscallEnter);
    PC.TraceSignals = C.Tracer->count(TraceEvent::SigQueue) +
                      C.Tracer->count(TraceEvent::SigDeliver) +
                      C.Tracer->count(TraceEvent::SigReturn) +
                      C.Tracer->count(TraceEvent::SigDrop);
  }
  C.Prof->report(C.Out, PC);
}
