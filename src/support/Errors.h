//===-- support/Errors.h - Fatal error handling -----------------*- C++ -*-==//
///
/// \file
/// Programmatic-error helpers for the Valgrind reproduction. Mirrors the
/// assert-liberally / unreachable style used throughout compiler codebases:
/// internal invariant violations abort loudly; recoverable conditions are
/// reported through return values instead.
///
//===----------------------------------------------------------------------===//
#ifndef VG_SUPPORT_ERRORS_H
#define VG_SUPPORT_ERRORS_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace vg {

/// Aborts with a message. Used for control flow that must never be reached
/// if program invariants hold (the moral equivalent of llvm_unreachable).
[[noreturn]] inline void unreachable(const char *Msg) {
  std::fprintf(stderr, "vg fatal: unreachable reached: %s\n", Msg);
  std::abort();
}

/// Reports a fatal usage/environment error (bad tool name, unloadable guest
/// image, ...) and exits. Library code should prefer returning errors; this
/// is for tool-level code where exiting is the only sensible response.
[[noreturn]] inline void fatalError(const char *Msg) {
  std::fprintf(stderr, "vg fatal: %s\n", Msg);
  std::exit(1);
}

} // namespace vg

#endif // VG_SUPPORT_ERRORS_H
