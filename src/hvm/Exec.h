//===-- hvm/Exec.h - The HVM executor ---------------------------*- C++ -*-==//
///
/// \file
/// Executes encoded HVM code blobs — the contents of the code cache. Plays
/// the role of the host CPU in this reproduction; the dispatcher/scheduler
/// (core/Dispatcher.cpp) sits on top, exactly as in Section 3.9.
///
/// Supports optional translation chaining: when a chain resolver is
/// supplied, a Boring constant-target exit whose chain slot has been filled
/// transfers directly to the successor translation without returning to the
/// dispatcher (the technique Valgrind 3.2 lacked; reproduced here so
/// bench/sec39_dispatch can ablate it).
///
//===----------------------------------------------------------------------===//
#ifndef VG_HVM_EXEC_H
#define VG_HVM_EXEC_H

#include "hvm/ExecContext.h"
#include "hvm/HostVM.h"
#include "ir/IR.h"

#include <cstdint>
#include <vector>

namespace vg {
namespace hvm {

/// An encoded translation: code-cache bytes plus frame metadata.
struct CodeBlob {
  std::vector<uint8_t> Bytes;
  uint32_t NumSpillSlots = 0;
  uint32_t NumChainSlots = 0;
  /// Per chain slot: the constant guest target PC of the exit, or
  /// NoChainTarget for exits chaining can never follow. Lets the
  /// translation table link chain slots eagerly at insertion time instead
  /// of waiting for the dispatcher to observe the edge.
  std::vector<uint32_t> ChainTargets;
  /// Chain slot of the fall-off-the-end exit (~0 for a register-form
  /// ending). Exits through any other slot are guarded side exits.
  uint32_t TerminalChainSlot = ~0u;
  /// Opaque cookie identifying the owning translation (used by chaining).
  void *Cookie = nullptr;
};

/// Resolves a chain slot to the successor translation's blob, or null if
/// the slot is unfilled. \p Cookie identifies the exiting translation.
using ChainResolveFn = const CodeBlob *(*)(void *User, void *Cookie,
                                           uint32_t Slot);

/// Why execution returned to the caller.
struct RunOutcome {
  enum class Kind { BlockEnd, Fault };
  Kind K = Kind::BlockEnd;
  uint32_t NextPC = 0;
  ir::JumpKind JK = ir::JumpKind::Boring;
  // Fault details (K == Fault):
  uint32_t FaultAddr = 0;
  bool FaultWrite = false;
  uint32_t FaultPC = 0; ///< guest PC of the faulting instruction (IMARK)
  /// Translations entered during this run (1 without chaining).
  uint64_t BlocksExecuted = 0;
  /// Identifies the exit site: the cookie of the translation that ended the
  /// run, and its chain slot (~0u for register-target exits). The
  /// dispatcher uses this to fill chain slots lazily.
  void *ExitCookie = nullptr;
  uint32_t ExitSlot = ~0u;
};

/// The executor. Stateless between runs apart from its register file and
/// spill frame, which are scratch.
class Executor {
public:
  /// \p Ctx must outlive run() calls; PCOffset is the guest-state offset of
  /// the program counter (written at every block exit).
  Executor(ExecContext &Ctx, uint32_t PCOffset)
      : Ctx(Ctx), PCOffset(PCOffset) {}

  /// Enables chaining: \p Budget limits how many chained transfers a single
  /// run may make before returning (the scheduler's quantum accounting).
  void setChaining(ChainResolveFn Fn, void *User) {
    ChainFn = Fn;
    ChainUser = User;
  }

  RunOutcome run(const CodeBlob &Blob, uint64_t ChainBudget = 0);

  /// Maximum spill slots a translation may use.
  static constexpr uint32_t MaxSpillSlots = 256;

private:
  ExecContext &Ctx;
  uint32_t PCOffset;
  ChainResolveFn ChainFn = nullptr;
  void *ChainUser = nullptr;
  uint64_t Regs[16] = {};
  uint64_t Frame[MaxSpillSlots] = {};
};

} // namespace hvm
} // namespace vg

#endif // VG_HVM_EXEC_H
