//===-- core/SignalEngine.h - Signal queueing and delivery ------*- C++ -*-==//
///
/// \file
/// The signal layer of Section 3.15, extracted from the Core monolith:
/// handler registration, queueing (with POSIX-style coalescing), masking,
/// frame save/restore around handler invocation, and the fatal default
/// action. Signals are only ever delivered between code blocks — the
/// dispatch engines call deliverPending() at the top of every dispatch
/// iteration — so loads/stores are never separated from their shadow
/// counterparts.
///
/// The engine owns the handler table and nothing else; thread state
/// (pending queues, frames, masks) lives in each ThreadState, and fatal
/// outcomes are published through Core's run-state flags. Under the
/// sharded scheduler every entry point here runs with the world lock held
/// (block-boundary work by construction).
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_SIGNALENGINE_H
#define VG_CORE_SIGNALENGINE_H

#include <array>
#include <cstdint>

namespace vg {

class Core;
class ThreadState;

class SignalEngine {
public:
  explicit SignalEngine(Core &C) : C(C) {}

  /// Handler registration (the sigaction surface of the simulated kernel).
  void setHandler(int Sig, uint32_t Handler);
  uint32_t handler(int Sig) const;
  /// The raw handler table (fault injection picks a random installed
  /// handler for its signal storms).
  const std::array<uint32_t, 64> &handlers() const { return SigHandlers; }

  /// Queues \p Sig at thread \p Tid (coalescing duplicates). Returns false
  /// when the target cannot take it (bad/exited thread).
  bool raise(int Tid, int Sig);

  /// Delivers the first unmasked pending signal of \p TS, if any. Returns
  /// true when delivery (or the fatal default action) consumed the
  /// boundary — the caller redispatches.
  bool deliverPending(ThreadState &TS);

  /// Pushes a signal frame and enters the handler for \p Sig.
  void deliver(ThreadState &TS, int Sig);

  /// A hardware-style fault at \p FaultPC: route to the handler for \p Sig
  /// or terminate the run.
  void handleFault(ThreadState &TS, uint32_t FaultPC, uint32_t FaultAddr,
                   bool Write, int Sig);

  /// Pops the current signal frame (the sigreturn syscall).
  void sigreturn(int Tid);

  /// Drops (and accounts for) everything still queued at a dying thread.
  void threadExiting(ThreadState &TS);

private:
  Core &C;
  std::array<uint32_t, 64> SigHandlers{}; // 0 = default action
};

} // namespace vg

#endif // VG_CORE_SIGNALENGINE_H
