//===-- kernel/SimKernel.cpp - The simulated kernel -----------------------==//

#include "kernel/SimKernel.h"

#include "guest/GuestArch.h"
#include "guest/GuestMemory.h"

using namespace vg;
using namespace vg::vg1;

//===----------------------------------------------------------------------===//
// Event helpers
//===----------------------------------------------------------------------===//

void SimKernel::preRegRead(int Tid, unsigned Reg, const char *Name) {
  if (Events && Events->PreRegRead)
    Events->PreRegRead(Tid, gso::gpr(Reg), 4, Name);
}

void SimKernel::postRegWrite(int Tid, unsigned Reg) {
  if (Events && Events->PostRegWrite)
    Events->PostRegWrite(Tid, gso::gpr(Reg), 4);
}

void SimKernel::preMemRead(int Tid, uint32_t Addr, uint32_t Len,
                           const char *Name) {
  if (Events && Events->PreMemRead)
    Events->PreMemRead(Tid, Addr, Len, Name);
}

void SimKernel::preMemReadAsciiz(int Tid, uint32_t Addr, const char *Name) {
  if (Events && Events->PreMemReadAsciiz)
    Events->PreMemReadAsciiz(Tid, Addr, Name);
}

void SimKernel::preMemWrite(int Tid, uint32_t Addr, uint32_t Len,
                            const char *Name) {
  if (Events && Events->PreMemWrite)
    Events->PreMemWrite(Tid, Addr, Len, Name);
}

void SimKernel::postMemWrite(int Tid, uint32_t Addr, uint32_t Len) {
  if (Events && Events->PostMemWrite)
    Events->PostMemWrite(Tid, Addr, Len);
}

void SimKernel::faultInjected(int Tid, FaultKind K, uint32_t Arg) {
  if (Events && Events->FaultInjected)
    Events->FaultInjected(Tid, static_cast<uint32_t>(K), Arg);
}

std::string SimKernel::readGuestString(CpuView &Cpu, uint32_t Addr) {
  std::string S;
  for (uint32_t I = 0; I != 4096; ++I) {
    uint8_t B;
    if (Cpu.mem().read(Addr + I, &B, 1, /*IgnorePerms=*/true).Faulted ||
        B == 0)
      break;
    S.push_back(static_cast<char>(B));
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

namespace {

/// Syscalls the --fault-inject plan may fail outright with SysErr. Control
/// transfers (exit/exit_thread/sigreturn) and the scheduling calls (which
/// have their own Wakeup fault kind) are excluded: a client cannot
/// meaningfully retry them, and failing sigreturn would wedge the signal
/// machinery rather than exercise it.
bool isFallibleSyscall(uint32_t Num) {
  switch (Num) {
  case SysWrite:
  case SysRead:
  case SysOpen:
  case SysClose:
  case SysBrk:
  case SysMmap:
  case SysMunmap:
  case SysMremap:
  case SysMprotect:
  case SysGettimeofday:
  case SysSettimeofday:
  case SysKill:
  case SysSigaction:
  case SysClone:
  case SysFsize:
    return true;
  default:
    return false;
  }
}

} // namespace

SimKernel::Action SimKernel::onSyscall(CpuView &Cpu) {
  ++NumSyscalls;
  ClockUsec += 5; // syscalls take time on the virtual clock
  int Tid = Cpu.threadId();
  preRegRead(Tid, 0, "syscall");
  uint32_t Num = Cpu.readReg(0);
  if (Events && Events->PreSyscall)
    Events->PreSyscall(Tid, Num);
  uint32_t Result = SysErr;

  // Injected failure: the call errors before its wrapper runs, so no
  // argument reads happen and no post_mem_write/post_reg_write can fire
  // for work that was never done (only the result register is written).
  if (Faults && isFallibleSyscall(Num) && Faults->roll(FaultKind::Syscall)) {
    faultInjected(Tid, FaultKind::Syscall, Num);
    Cpu.writeReg(0, SysErr);
    postRegWrite(Tid, 0);
    if (Events && Events->PostSyscall)
      Events->PostSyscall(Tid, Num, SysErr);
    return Action::Continue;
  }

  switch (Num) {
  case SysExit:
    preRegRead(Tid, 1, "exit(status)");
    TheExitCode = static_cast<int>(Cpu.readReg(1));
    return Action::Exit;
  case SysWrite:
    Result = doWrite(Cpu);
    break;
  case SysRead:
    Result = doRead(Cpu);
    break;
  case SysOpen:
    Result = doOpen(Cpu);
    break;
  case SysClose:
    Result = doClose(Cpu);
    break;
  case SysBrk:
    Result = doBrk(Cpu);
    break;
  case SysMmap:
    Result = doMmap(Cpu);
    break;
  case SysMunmap:
    Result = doMunmap(Cpu);
    break;
  case SysMremap:
    Result = doMremap(Cpu);
    break;
  case SysMprotect:
    Result = doMprotect(Cpu);
    break;
  case SysGettimeofday:
    Result = doGettimeofday(Cpu);
    break;
  case SysSettimeofday:
    Result = doSettimeofday(Cpu);
    break;
  case SysGetpid:
    Result = static_cast<uint32_t>(NextPid);
    break;
  case SysKill:
    Result = doKill(Cpu);
    break;
  case SysSigaction:
    Result = doSigaction(Cpu);
    break;
  case SysSigreturn:
    if (Host) {
      Host->sigreturn(Tid);
      // State was replaced wholesale; do not write a result register.
      return Action::Continue;
    }
    break;
  case SysClone:
    Result = doClone(Cpu);
    break;
  case SysExitThread:
    preRegRead(Tid, 1, "exit_thread(status)");
    if (Host) {
      Host->exitThread(Tid, static_cast<int>(Cpu.readReg(1)));
      return Action::Continue;
    }
    // Single-threaded native runs: thread exit is process exit.
    TheExitCode = static_cast<int>(Cpu.readReg(1));
    return Action::Exit;
  case SysYield:
    if (Faults && Faults->roll(FaultKind::Wakeup)) {
      // Spurious return: the caller resumes without the scheduler having
      // been asked to switch away.
      faultInjected(Tid, FaultKind::Wakeup, 0);
    } else if (Host) {
      Host->requestYield(Tid);
    }
    Result = 0;
    break;
  case SysNanosleep: {
    preRegRead(Tid, 1, "nanosleep(usec)");
    uint32_t Usec = Cpu.readReg(1);
    if (Faults && Usec > 0 && Faults->roll(FaultKind::Wakeup)) {
      // Spurious early wakeup: only part of the interval elapses.
      uint32_t Slept = Faults->pick(Usec);
      ClockUsec += Slept;
      faultInjected(Tid, FaultKind::Wakeup, Usec - Slept);
    } else {
      ClockUsec += Usec;
    }
    Result = 0;
    break;
  }
  case SysTime:
    Result = static_cast<uint32_t>(ClockUsec / 1'000'000);
    break;
  case SysFsize:
    Result = doFsize(Cpu);
    break;
  default:
    Result = SysErr; // ENOSYS
    break;
  }

  Cpu.writeReg(0, Result);
  postRegWrite(Tid, 0);
  if (Events && Events->PostSyscall)
    Events->PostSyscall(Tid, Num, Result);
  return Action::Continue;
}

//===----------------------------------------------------------------------===//
// File syscalls
//===----------------------------------------------------------------------===//

uint32_t SimKernel::doWrite(CpuView &Cpu) {
  int Tid = Cpu.threadId();
  preRegRead(Tid, 1, "write(fd)");
  preRegRead(Tid, 2, "write(buf)");
  preRegRead(Tid, 3, "write(len)");
  uint32_t Fd = Cpu.readReg(1), Buf = Cpu.readReg(2), Len = Cpu.readReg(3);
  if (Fd >= Fds.size() || !Fds[Fd].Open)
    return SysErr;
  preMemRead(Tid, Buf, Len, "write(buf)");
  // Short write: the kernel consumes only the first N bytes. The pre event
  // still covers the whole buffer (the client asked for all of it to be
  // readable), exactly as real wrappers do.
  uint32_t N = Len;
  if (Faults && Len > 1 && Faults->roll(FaultKind::ShortIO)) {
    N = 1 + Faults->pick(Len - 1);
    faultInjected(Tid, FaultKind::ShortIO, N);
  }
  std::vector<uint8_t> Data(N);
  if (Cpu.mem().read(Buf, Data.data(), N, /*IgnorePerms=*/true).Faulted)
    return SysErr; // EFAULT
  OpenFd &F = Fds[Fd];
  switch (F.Kind) {
  case FdKind::Stdout:
    StdoutBuf.append(Data.begin(), Data.end());
    return N;
  case FdKind::Stderr:
    StderrBuf.append(Data.begin(), Data.end());
    return N;
  case FdKind::File: {
    if (!F.Writable)
      return SysErr;
    auto &Bytes = Files[F.Name];
    if (Bytes.size() < F.Pos + N)
      Bytes.resize(F.Pos + N);
    std::copy(Data.begin(), Data.end(), Bytes.begin() + F.Pos);
    F.Pos += N;
    return N;
  }
  default:
    return SysErr;
  }
}

uint32_t SimKernel::doRead(CpuView &Cpu) {
  int Tid = Cpu.threadId();
  preRegRead(Tid, 1, "read(fd)");
  preRegRead(Tid, 2, "read(buf)");
  preRegRead(Tid, 3, "read(len)");
  uint32_t Fd = Cpu.readReg(1), Buf = Cpu.readReg(2), Len = Cpu.readReg(3);
  if (Fd >= Fds.size() || !Fds[Fd].Open)
    return SysErr;
  preMemWrite(Tid, Buf, Len, "read(buf)");
  const uint8_t *Src = nullptr;
  uint32_t Avail = 0;
  OpenFd &F = Fds[Fd];
  if (F.Kind == FdKind::Stdin) {
    Src = StdinBuf.data() + StdinPos;
    Avail = static_cast<uint32_t>(StdinBuf.size() - StdinPos);
  } else if (F.Kind == FdKind::File) {
    auto &Bytes = Files[F.Name];
    Src = Bytes.data() + std::min<size_t>(F.Pos, Bytes.size());
    Avail = F.Pos < Bytes.size()
                ? static_cast<uint32_t>(Bytes.size() - F.Pos)
                : 0;
  } else {
    return SysErr;
  }
  uint32_t N = std::min(Len, Avail);
  // Short read: deliver only the first N' bytes of what is available.
  if (Faults && N > 1 && Faults->roll(FaultKind::ShortIO)) {
    N = 1 + Faults->pick(N - 1);
    faultInjected(Tid, FaultKind::ShortIO, N);
  }
  if (N &&
      Cpu.mem().write(Buf, Src, N, /*IgnorePerms=*/true).Faulted)
    return SysErr;
  if (F.Kind == FdKind::Stdin)
    StdinPos += N;
  else
    F.Pos += N;
  // post_mem_write covers exactly the transferred length — and therefore
  // does not fire at all for a zero-byte (EOF) read.
  if (N) {
    postMemWrite(Tid, Buf, N);
    if (Events && Events->PostFileRead)
      Events->PostFileRead(Tid, Fd, Buf, N,
                           F.Kind == FdKind::Stdin ? "<stdin>"
                                                   : F.Name.c_str());
  }
  return N;
}

uint32_t SimKernel::doOpen(CpuView &Cpu) {
  int Tid = Cpu.threadId();
  preRegRead(Tid, 1, "open(path)");
  preRegRead(Tid, 2, "open(flags)");
  uint32_t Path = Cpu.readReg(1), Flags = Cpu.readReg(2);
  preMemReadAsciiz(Tid, Path, "open(path)");
  std::string Name = readGuestString(Cpu, Path);
  bool Write = Flags & 1;
  if (!Write && !Files.count(Name))
    return SysErr; // ENOENT
  if (Write && !Files.count(Name))
    Files[Name] = {};
  OpenFd F{FdKind::File, Name, 0, true};
  F.Writable = Write;
  for (size_t I = 3; I != Fds.size(); ++I) {
    if (!Fds[I].Open) {
      Fds[I] = F;
      return static_cast<uint32_t>(I);
    }
  }
  Fds.push_back(F);
  return static_cast<uint32_t>(Fds.size() - 1);
}

uint32_t SimKernel::doClose(CpuView &Cpu) {
  preRegRead(Cpu.threadId(), 1, "close(fd)");
  uint32_t Fd = Cpu.readReg(1);
  if (Fd >= Fds.size() || !Fds[Fd].Open || Fd < 3)
    return SysErr;
  Fds[Fd] = OpenFd{};
  return 0;
}

uint32_t SimKernel::doFsize(CpuView &Cpu) {
  preRegRead(Cpu.threadId(), 1, "fsize(fd)");
  uint32_t Fd = Cpu.readReg(1);
  if (Fd >= Fds.size() || Fds[Fd].Kind != FdKind::File)
    return SysErr;
  return static_cast<uint32_t>(Files[Fds[Fd].Name].size());
}

//===----------------------------------------------------------------------===//
// Memory syscalls (R6 events)
//===----------------------------------------------------------------------===//

uint32_t SimKernel::doBrk(CpuView &Cpu) {
  int Tid = Cpu.threadId();
  preRegRead(Tid, 1, "brk(addr)");
  uint32_t NewEnd = Cpu.readReg(1);
  const Segment *Heap = AS.segmentByKind(SegKind::ClientHeap);
  if (!Heap)
    return SysErr;
  uint32_t OldEnd = Heap->End;
  if (NewEnd == 0)
    return OldEnd; // query
  NewEnd = AddressSpace::pageUp(NewEnd);
  if (NewEnd == OldEnd)
    return OldEnd;
  // Injected exhaustion only applies to actual resizes, never queries.
  if (Faults && Faults->roll(FaultKind::MemPressure)) {
    faultInjected(Tid, FaultKind::MemPressure, NewEnd);
    return SysErr;
  }
  if (!AS.resize(Heap->Start, NewEnd))
    return SysErr;
  if (NewEnd > OldEnd) {
    Cpu.mem().map(OldEnd, NewEnd - OldEnd, PermRW);
    if (Events && Events->NewMemBrk)
      Events->NewMemBrk(OldEnd, NewEnd - OldEnd);
  } else {
    Cpu.mem().unmap(NewEnd, OldEnd - NewEnd);
    if (Events && Events->DieMemBrk)
      Events->DieMemBrk(NewEnd, OldEnd - NewEnd);
  }
  return NewEnd;
}

uint32_t SimKernel::doMmap(CpuView &Cpu) {
  int Tid = Cpu.threadId();
  preRegRead(Tid, 1, "mmap(addr)");
  preRegRead(Tid, 2, "mmap(len)");
  preRegRead(Tid, 3, "mmap(prot)");
  preRegRead(Tid, 4, "mmap(flags)");
  uint32_t Addr = Cpu.readReg(1), Len = Cpu.readReg(2);
  uint32_t Prot = Cpu.readReg(3), Flags = Cpu.readReg(4);
  if (Len == 0)
    return SysErr;
  Len = AddressSpace::pageUp(Len);
  if (Faults && Faults->roll(FaultKind::MemPressure)) {
    faultInjected(Tid, FaultKind::MemPressure, Len);
    return SysErr;
  }
  bool Fixed = Flags & 1;
  if (Fixed) {
    // Pre-check: never allow the client to take the core's region
    // (Section 3.10's conflict avoidance).
    if (Addr == 0 || AS.anyOverlap(Addr, Len))
      return SysErr;
  } else {
    Addr = AS.findFree(Len, Addr ? Addr : AddressSpace::MmapBase);
    if (Addr == 0)
      return SysErr;
  }
  uint8_t Perms = static_cast<uint8_t>(Prot ? Prot : static_cast<uint32_t>(PermRW));
  if (!AS.add(Addr, Len, Perms, SegKind::ClientMmap, "mmap"))
    return SysErr;
  Cpu.mem().map(Addr, Len, Perms);
  if (Events && Events->NewMemMmap)
    Events->NewMemMmap(Addr, Len, Perms);
  return Addr;
}

uint32_t SimKernel::doMunmap(CpuView &Cpu) {
  int Tid = Cpu.threadId();
  preRegRead(Tid, 1, "munmap(addr)");
  preRegRead(Tid, 2, "munmap(len)");
  uint32_t Addr = Cpu.readReg(1), Len = Cpu.readReg(2);
  if (Len == 0)
    return SysErr;
  auto Removed = AS.release(Addr, Len);
  for (auto [Lo, Hi] : Removed) {
    Cpu.mem().unmap(Lo, Hi - Lo);
    if (Events && Events->DieMemMunmap)
      Events->DieMemMunmap(Lo, Hi - Lo);
  }
  return Removed.empty() ? SysErr : 0;
}

uint32_t SimKernel::doMremap(CpuView &Cpu) {
  int Tid = Cpu.threadId();
  preRegRead(Tid, 1, "mremap(old)");
  preRegRead(Tid, 2, "mremap(oldlen)");
  preRegRead(Tid, 3, "mremap(newlen)");
  uint32_t Old = Cpu.readReg(1);
  uint32_t OldLen = AddressSpace::pageUp(Cpu.readReg(2));
  uint32_t NewLen = AddressSpace::pageUp(Cpu.readReg(3));
  const Segment *S = AS.segmentAt(Old);
  if (!S || S->Start != Old || OldLen == 0 || NewLen == 0)
    return SysErr;
  if (Faults && Faults->roll(FaultKind::MemPressure)) {
    faultInjected(Tid, FaultKind::MemPressure, NewLen);
    return SysErr;
  }
  uint8_t Perms = S->Perms;

  if (NewLen <= OldLen) {
    // Shrink in place.
    auto Removed = AS.release(Old + NewLen, OldLen - NewLen);
    for (auto [Lo, Hi] : Removed) {
      Cpu.mem().unmap(Lo, Hi - Lo);
      if (Events && Events->DieMemMunmap)
        Events->DieMemMunmap(Lo, Hi - Lo);
    }
    return Old;
  }
  // Grow: move to a fresh range, copying contents (and firing
  // copy_mem_mremap so tools can move shadow memory too).
  uint32_t NewAddr = AS.findFree(NewLen);
  if (NewAddr == 0)
    return SysErr;
  if (!AS.add(NewAddr, NewLen, Perms, SegKind::ClientMmap, "mremap"))
    return SysErr;
  Cpu.mem().map(NewAddr, NewLen, Perms);
  std::vector<uint8_t> Tmp(OldLen);
  if (Cpu.mem().read(Old, Tmp.data(), OldLen, true).Faulted ||
      Cpu.mem().write(NewAddr, Tmp.data(), OldLen, true).Faulted) {
    // Back out the new range. It was never announced (no new_mem_mmap
    // fired), so it must not stay mapped — and its removal needs no
    // die_mem_munmap either.
    for (auto [Lo, Hi] : AS.release(NewAddr, NewLen))
      Cpu.mem().unmap(Lo, Hi - Lo);
    return SysErr;
  }
  if (Events && Events->NewMemMmap)
    Events->NewMemMmap(NewAddr, NewLen, Perms);
  if (Events && Events->CopyMemMremap)
    Events->CopyMemMremap(Old, NewAddr, OldLen);
  auto Removed = AS.release(Old, OldLen);
  for (auto [Lo, Hi] : Removed) {
    Cpu.mem().unmap(Lo, Hi - Lo);
    if (Events && Events->DieMemMunmap)
      Events->DieMemMunmap(Lo, Hi - Lo);
  }
  return NewAddr;
}

uint32_t SimKernel::doMprotect(CpuView &Cpu) {
  int Tid = Cpu.threadId();
  preRegRead(Tid, 1, "mprotect(addr)");
  preRegRead(Tid, 2, "mprotect(len)");
  preRegRead(Tid, 3, "mprotect(prot)");
  uint32_t Addr = Cpu.readReg(1), Len = Cpu.readReg(2);
  uint32_t Prot = Cpu.readReg(3);
  const Segment *S = AS.segmentAt(Addr);
  if (!S || S->Kind == SegKind::CoreReserved)
    return SysErr;
  Cpu.mem().protect(Addr, Len, static_cast<uint8_t>(Prot));
  return 0;
}

//===----------------------------------------------------------------------===//
// Time syscalls
//===----------------------------------------------------------------------===//

uint32_t SimKernel::doGettimeofday(CpuView &Cpu) {
  int Tid = Cpu.threadId();
  preRegRead(Tid, 1, "gettimeofday(tv)");
  uint32_t Tv = Cpu.readReg(1);
  preMemWrite(Tid, Tv, 8, "gettimeofday(tv)");
  uint32_t Sec = static_cast<uint32_t>(ClockUsec / 1'000'000);
  uint32_t Usec = static_cast<uint32_t>(ClockUsec % 1'000'000);
  if (Cpu.mem().writeU32(Tv, Sec).Faulted)
    return SysErr; // nothing landed, nothing to announce
  if (Cpu.mem().writeU32(Tv + 4, Usec).Faulted) {
    postMemWrite(Tid, Tv, 4); // only the seconds word landed
    return SysErr;
  }
  postMemWrite(Tid, Tv, 8);
  return 0;
}

uint32_t SimKernel::doSettimeofday(CpuView &Cpu) {
  int Tid = Cpu.threadId();
  preRegRead(Tid, 1, "settimeofday(tv)");
  uint32_t Tv = Cpu.readReg(1);
  preMemRead(Tid, Tv, 8, "settimeofday(tv)");
  uint32_t Sec, Usec;
  if (Cpu.mem().readU32(Tv, Sec).Faulted ||
      Cpu.mem().readU32(Tv + 4, Usec).Faulted)
    return SysErr;
  ClockUsec = static_cast<uint64_t>(Sec) * 1'000'000 + Usec;
  return 0;
}

//===----------------------------------------------------------------------===//
// Threads and signals (forwarded to the core)
//===----------------------------------------------------------------------===//

uint32_t SimKernel::doKill(CpuView &Cpu) {
  int Tid = Cpu.threadId();
  preRegRead(Tid, 1, "kill(tid)");
  preRegRead(Tid, 2, "kill(sig)");
  if (!Host)
    return SysErr;
  return Host->raiseSignal(static_cast<int>(Cpu.readReg(1)),
                           static_cast<int>(Cpu.readReg(2)))
             ? 0
             : SysErr;
}

uint32_t SimKernel::doSigaction(CpuView &Cpu) {
  int Tid = Cpu.threadId();
  preRegRead(Tid, 1, "sigaction(sig)");
  preRegRead(Tid, 2, "sigaction(handler)");
  if (!Host)
    return SysErr;
  int Sig = static_cast<int>(Cpu.readReg(1));
  uint32_t Old = Host->signalHandler(Sig);
  // This is the interception point of Section 3.15: the handler address
  // is recorded by the core, never given to a real kernel, so the client's
  // handler only ever runs under the core's control.
  Host->setSignalHandler(Sig, Cpu.readReg(2));
  return Old;
}

uint32_t SimKernel::doClone(CpuView &Cpu) {
  int Tid = Cpu.threadId();
  preRegRead(Tid, 1, "clone(entry)");
  preRegRead(Tid, 2, "clone(stack)");
  preRegRead(Tid, 3, "clone(arg)");
  if (!Host)
    return SysErr;
  int NewTid = Host->spawnThread(Cpu.readReg(1), Cpu.readReg(2),
                                 Cpu.readReg(3));
  return NewTid < 0 ? SysErr : static_cast<uint32_t>(NewTid);
}
