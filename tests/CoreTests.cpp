//===-- tests/CoreTests.cpp - Core integration tests ----------------------==//
///
/// \file
/// Integration tests for the core: start-up, dispatch, syscalls, the
/// events system, client requests, redirection/wrapping, self-modifying
/// code, signals, threads, and translation-table behaviour.
///
//===----------------------------------------------------------------------===//

#include "core/ClientRequests.h"
#include "core/Launcher.h"
#include "guestlib/GuestLib.h"
#include "tools/ICnt.h"
#include "tools/Nulgrind.h"

#include <gtest/gtest.h>

using namespace vg;
using namespace vg::vg1;

namespace {

constexpr uint32_t CodeBase = 0x1000;
constexpr uint32_t DataBase = 0x100000;

/// Builds an image with guestlib: main is emitted by \p Body(Code, Data,
/// Lib) and must end in ret.
GuestImage buildProgram(
    const std::function<void(Assembler &, Assembler &, GuestLibLabels &)>
        &Body) {
  Assembler Code(CodeBase);
  Assembler Data(DataBase);
  GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);
  Code.bind(Main);
  Code.symbol("main");
  Body(Code, Data, Lib);
  return GuestImageBuilder()
      .addCode(Code)
      .addData(Data)
      .entry(Entry)
      .build();
}

/// A tiny program: print "hello\n", return 7.
GuestImage helloImage() {
  return buildProgram([](Assembler &Code, Assembler &Data,
                         GuestLibLabels &Lib) {
    Label Str = Data.boundLabel();
    Data.emitString("hello\n");
    Code.movi(Reg::R1, Data.labelAddr(Str));
    Code.call(Lib.Print);
    Code.movi(Reg::R0, 7);
    Code.ret();
  });
}

//===----------------------------------------------------------------------===//
// Basic execution
//===----------------------------------------------------------------------===//

TEST(Core, HelloWorldUnderNulgrind) {
  Nulgrind T;
  RunReport R = runUnderCore(helloImage(), &T);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 7);
  EXPECT_EQ(R.Stdout, "hello\n");
}

TEST(Core, NativeAndCoreAgree) {
  GuestImage Img = helloImage();
  RunReport N = runNative(Img);
  Nulgrind T;
  RunReport C = runUnderCore(Img, &T);
  EXPECT_TRUE(N.Completed);
  EXPECT_TRUE(C.Completed);
  EXPECT_EQ(N.ExitCode, C.ExitCode);
  EXPECT_EQ(N.Stdout, C.Stdout);
}

TEST(Core, RunsWithNoToolAtAll) {
  RunReport R = runUnderCore(helloImage(), nullptr);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 7);
}

TEST(Core, MallocWorkloadMatchesNative) {
  // Allocate, fill, sum, print: exercises brk, the guest allocator, loops.
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &Lib) {
    Code.movi(Reg::R1, 4096);
    Code.call(Lib.Malloc);
    Code.mov(Reg::R6, Reg::R0); // buf
    Code.movi(Reg::R7, 0);      // i
    Label Fill = Code.boundLabel();
    Code.mul(Reg::R2, Reg::R7, Reg::R7);
    Code.stx(Reg::R6, Reg::R7, 2, 0, Reg::R2);
    Code.addi(Reg::R7, Reg::R7, 1);
    Code.cmpi(Reg::R7, 1024);
    Code.blt(Fill);
    Code.movi(Reg::R8, 0);
    Code.movi(Reg::R7, 0);
    Label Sum = Code.boundLabel();
    Code.ldx(Reg::R2, Reg::R6, Reg::R7, 2, 0);
    Code.add(Reg::R8, Reg::R8, Reg::R2);
    Code.addi(Reg::R7, Reg::R7, 1);
    Code.cmpi(Reg::R7, 1024);
    Code.blt(Sum);
    Code.mov(Reg::R1, Reg::R8);
    Code.call(Lib.PrintU32);
    Code.movi(Reg::R0, 0);
    Code.ret();
  });
  RunReport N = runNative(Img);
  Nulgrind T;
  RunReport C = runUnderCore(Img, &T);
  ASSERT_TRUE(N.Completed);
  ASSERT_TRUE(C.Completed);
  EXPECT_EQ(N.Stdout, C.Stdout);
  EXPECT_NE(N.Stdout.find("357389824"), std::string::npos)
      << "sum of i^2 for i<1024: " << N.Stdout;
}

TEST(Core, StdinRoundTrip) {
  // Read 5 bytes from stdin, write them back.
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &Lib) {
    Label Buf = Data.boundLabel();
    Data.emitZeros(16);
    Code.movi(Reg::R0, SysRead);
    Code.movi(Reg::R1, 0);
    Code.movi(Reg::R2, Data.labelAddr(Buf));
    Code.movi(Reg::R3, 5);
    Code.sys();
    Code.mov(Reg::R3, Reg::R0); // bytes read
    Code.movi(Reg::R0, SysWrite);
    Code.movi(Reg::R1, 1);
    Code.sys();
    Code.movi(Reg::R0, 0);
    Code.ret();
  });
  Nulgrind T;
  RunReport R = runUnderCore(Img, &T, {}, "abcdefg");
  EXPECT_EQ(R.Stdout, "abcde");
}

TEST(Core, FatalSegfaultReported) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Code.movi(Reg::R1, 0x00F00000); // unmapped
    Code.ld(Reg::R2, Reg::R1, 0);
    Code.ret();
  });
  Nulgrind T;
  RunReport R = runUnderCore(Img, &T);
  EXPECT_FALSE(R.Completed);
  EXPECT_EQ(R.FatalSignal, SigSEGV);
  EXPECT_NE(R.ToolOutput.find("fatal signal 11"), std::string::npos);
}

TEST(Core, ICntCountsExactly) {
  // 3 + N*4 + ... deterministic program; compare with native count.
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Code.movi(Reg::R1, 0);
    Label Loop = Code.boundLabel();
    Code.addi(Reg::R1, Reg::R1, 1);
    Code.cmpi(Reg::R1, 500);
    Code.blt(Loop);
    Code.movi(Reg::R0, 0);
    Code.ret();
  });
  RunReport N = runNative(Img);
  for (ICnt::Mode M : {ICnt::Mode::Inline, ICnt::Mode::CCall}) {
    ICnt T(M);
    RunReport C = runUnderCore(Img, &T);
    ASSERT_TRUE(C.Completed);
    EXPECT_EQ(T.count(), N.NativeInsns)
        << (M == ICnt::Mode::Inline ? "inline" : "ccall");
  }
}

//===----------------------------------------------------------------------===//
// Events (Table 1)
//===----------------------------------------------------------------------===//

/// A tool that records which events fire.
class EventRecorder : public Tool {
public:
  const char *name() const override { return "event-recorder"; }
  void init(Core &C) override {
    EventHub &E = C.events();
    E.PreRegRead = [this](int, uint32_t, uint32_t, const char *) {
      ++PreRegReads;
    };
    E.PostRegWrite = [this](int, uint32_t, uint32_t) { ++PostRegWrites; };
    E.PreMemRead = [this](int, uint32_t, uint32_t, const char *) {
      ++PreMemReads;
    };
    E.PreMemReadAsciiz = [this](int, uint32_t, const char *) {
      ++PreMemAsciiz;
    };
    E.PreMemWrite = [this](int, uint32_t, uint32_t, const char *) {
      ++PreMemWrites;
    };
    E.PostMemWrite = [this](int, uint32_t, uint32_t) { ++PostMemWrites; };
    E.NewMemStartup = [this](uint32_t, uint32_t, uint8_t) { ++NewStartup; };
    E.NewMemMmap = [this](uint32_t A, uint32_t L, uint8_t) {
      ++NewMmap;
      LastMmapAddr = A;
      LastMmapLen = L;
    };
    E.DieMemMunmap = [this](uint32_t, uint32_t) { ++DieMunmap; };
    E.NewMemBrk = [this](uint32_t, uint32_t) { ++NewBrk; };
    E.DieMemBrk = [this](uint32_t, uint32_t) { ++DieBrk; };
    E.CopyMemMremap = [this](uint32_t, uint32_t, uint32_t) { ++CopyMremap; };
    E.NewMemStack = [this](uint32_t, uint32_t L) {
      ++NewStack;
      StackBytesNew += L;
    };
    E.DieMemStack = [this](uint32_t, uint32_t L) {
      ++DieStack;
      StackBytesDied += L;
    };
  }

  int PreRegReads = 0, PostRegWrites = 0, PreMemReads = 0, PreMemAsciiz = 0;
  int PreMemWrites = 0, PostMemWrites = 0, NewStartup = 0, NewMmap = 0;
  int DieMunmap = 0, NewBrk = 0, DieBrk = 0, CopyMremap = 0;
  int NewStack = 0, DieStack = 0;
  uint64_t StackBytesNew = 0, StackBytesDied = 0;
  uint32_t LastMmapAddr = 0, LastMmapLen = 0;
};

TEST(Events, AllTableOneEventsFire) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &Lib) {
    Label Path = Data.boundLabel();
    Data.emitString("f.txt");
    Label Tv = Data.boundLabel();
    Data.emitZeros(8);
    // mmap 2 pages, munmap them.
    Code.movi(Reg::R0, SysMmap);
    Code.movi(Reg::R1, 0);
    Code.movi(Reg::R2, 8192);
    Code.movi(Reg::R3, 3); // rw
    Code.movi(Reg::R4, 0);
    Code.sys();
    Code.mov(Reg::R6, Reg::R0);
    // mremap to 4 pages (forces a move: copy_mem_mremap).
    Code.movi(Reg::R0, SysMremap);
    Code.mov(Reg::R1, Reg::R6);
    Code.movi(Reg::R2, 8192);
    Code.movi(Reg::R3, 16384);
    Code.sys();
    Code.mov(Reg::R6, Reg::R0);
    Code.movi(Reg::R0, SysMunmap);
    Code.mov(Reg::R1, Reg::R6);
    Code.movi(Reg::R2, 16384);
    Code.sys();
    // brk up, then down.
    Code.movi(Reg::R0, SysBrk);
    Code.movi(Reg::R1, 0);
    Code.sys();
    Code.mov(Reg::R6, Reg::R0);
    Code.addi(Reg::R1, Reg::R6, 8192);
    Code.movi(Reg::R0, SysBrk);
    Code.sys();
    Code.mov(Reg::R1, Reg::R6);
    Code.movi(Reg::R0, SysBrk);
    Code.sys();
    // open (asciiz) + gettimeofday (mem write).
    Code.movi(Reg::R0, SysOpen);
    Code.movi(Reg::R1, Data.labelAddr(Path));
    Code.movi(Reg::R2, 1); // create
    Code.sys();
    Code.movi(Reg::R0, SysGettimeofday);
    Code.movi(Reg::R1, Data.labelAddr(Tv));
    Code.sys();
    // Push/pop drive stack events.
    Code.push(Reg::R1);
    Code.pop(Reg::R1);
    Code.movi(Reg::R0, 0);
    Code.ret();
  });
  EventRecorder T;
  RunReport R = runUnderCore(Img, &T);
  ASSERT_TRUE(R.Completed);
  EXPECT_GT(T.PreRegReads, 10);
  EXPECT_GT(T.PostRegWrites, 3);
  EXPECT_GT(T.PreMemWrites, 0);  // gettimeofday
  EXPECT_GT(T.PostMemWrites, 0); // gettimeofday
  EXPECT_EQ(T.PreMemAsciiz, 1);  // open path
  EXPECT_GE(T.NewStartup, 3);    // text, data, heap, stack area
  EXPECT_EQ(T.NewMmap, 2);       // mmap + mremap new range
  EXPECT_GE(T.DieMunmap, 2);     // mremap old range + munmap
  EXPECT_EQ(T.NewBrk, 1);
  EXPECT_EQ(T.DieBrk, 1);
  EXPECT_EQ(T.CopyMremap, 1);
  EXPECT_GT(T.NewStack, 0);
  EXPECT_GT(T.DieStack, 0);
}

TEST(Events, StackSwitchHeuristicSuppressesEvents) {
  // Move SP by more than the threshold: no stack events must fire for the
  // jump itself (it is treated as a stack switch, Section 3.12).
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Code.mov(Reg::R6, Reg::SP);
    Code.movi(Reg::R7, 0x40000); // far away (256KB below)
    Code.sub(Reg::R7, Reg::R6, Reg::R7);
    Code.mov(Reg::SP, Reg::R7); // small enough: events fire
    Code.mov(Reg::SP, Reg::R6); // restore
    Code.movi(Reg::R0, 0);
    Code.ret();
  });
  EventRecorder T;
  RunReport R = runUnderCore(
      Img, &T, {"--stack-switch-threshold=65536"});
  ASSERT_TRUE(R.Completed);
  // The 256KB move exceeds the 64KB threshold: treated as a switch, so the
  // only stack events come from calls/pushes (all of them 4-byte sized).
  EXPECT_LT(T.StackBytesNew, 1024u);
  EXPECT_LT(T.StackBytesDied, 1024u);
}

//===----------------------------------------------------------------------===//
// Client requests (Section 3.11)
//===----------------------------------------------------------------------===//

TEST(ClientRequests, RunningOnValgrindAndPrint) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &) {
    Label Msg = Data.boundLabel();
    Data.emitString("from-guest");
    Code.movi(Reg::R0, CrRunningOnValgrind);
    Code.clreq();
    Code.mov(Reg::R6, Reg::R0);
    Code.movi(Reg::R0, CrPrint);
    Code.movi(Reg::R1, Data.labelAddr(Msg));
    Code.clreq();
    Code.mov(Reg::R0, Reg::R6);
    Code.ret();
  });
  Nulgrind T;
  RunReport C = runUnderCore(Img, &T);
  EXPECT_EQ(C.ExitCode, 1); // running under the core
  EXPECT_NE(C.ToolOutput.find("from-guest"), std::string::npos);

  RunReport N = runNative(Img);
  EXPECT_EQ(N.ExitCode, 0); // natively, CLREQ reads as 0
}

TEST(ClientRequests, ToolRequestsRouted) {
  struct ReqTool : Tool {
    const char *name() const override { return "reqtool"; }
    bool handleClientRequest(int, uint32_t Code, const uint32_t Args[4],
                             uint32_t &Result) override {
      if (Code != CrToolBase + 5)
        return false;
      Result = Args[0] * Args[1];
      return true;
    }
  };
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Code.movi(Reg::R0, CrToolBase + 5);
    Code.movi(Reg::R1, 6);
    Code.movi(Reg::R2, 7);
    Code.clreq();
    Code.ret();
  });
  ReqTool T;
  RunReport R = runUnderCore(Img, &T);
  EXPECT_EQ(R.ExitCode, 42);
}

//===----------------------------------------------------------------------===//
// Function replacement and wrapping (Section 3.13)
//===----------------------------------------------------------------------===//

TEST(Redirect, HostReplacementOfGuestFunction) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Label Victim = Code.newLabel();
    Code.movi(Reg::R1, 10);
    Code.call(Victim);
    Code.ret(); // main returns victim's result
    Code.bind(Victim);
    Code.symbol("victim");
    Code.movi(Reg::R0, 111); // original behaviour
    Code.ret();
  });
  Nulgrind T;
  RunReport R = runUnderCoreWith(
      Img, &T, {}, "", ~0ull, [](Core &C) {
        C.redirectSymbolToHost("victim", [](Core &, ThreadState &TS) {
          TS.setGpr(0, TS.gpr(1) * 3); // replacement: triple the argument
        });
      });
  EXPECT_EQ(R.ExitCode, 30);
}

TEST(Redirect, WrappingCallsThroughToOriginal) {
  // A wrapper that inspects the argument, calls the original, and doubles
  // its result — the Section 3.13 wrapping pattern.
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Label Victim = Code.newLabel();
    Code.movi(Reg::R1, 5);
    Code.call(Victim);
    Code.ret();
    Code.bind(Victim);
    Code.symbol("victim");
    Code.addi(Reg::R0, Reg::R1, 100); // original: arg + 100
    Code.ret();
  });
  Nulgrind T;
  uint32_t SeenArg = 0;
  RunReport R = runUnderCoreWith(
      Img, &T, {}, "", ~0ull, [&](Core &C) {
        // Re-point the symbol, keeping the original entry for call-through.
        uint32_t Orig = 0;
        // We need the symbol address: look it up from the image later; the
        // dispatcher redirect keys on the entry address, so capture it via
        // the redirect itself.
        C.redirectSymbolToHost("victim",
                               [&SeenArg, Orig](Core &Core_, ThreadState &TS) {
                                 (void)Orig;
                                 SeenArg = TS.gpr(1);
                                 // Call the original body: it is at the
                                 // redirect address itself, but host
                                 // redirects fire on dispatch, so jump past
                                 // is impossible — instead use the address
                                 // stored by the test below.
                               });
      });
  (void)R;
  // This variant is exercised properly in Redirect.WrapViaCallGuest below;
  // here we only assert the wrapper observed the argument.
  EXPECT_EQ(SeenArg, 5u);
}

TEST(Redirect, WrapViaCallGuest) {
  // Full wrapping: the host wrapper calls a *different* guest helper
  // through callGuest, then post-processes.
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Label Victim = Code.newLabel(), Helper = Code.newLabel();
    Code.movi(Reg::R1, 4);
    Code.call(Victim);
    Code.ret();
    Code.bind(Victim);
    Code.symbol("victim");
    Code.movi(Reg::R0, 999); // replaced away
    Code.ret();
    Code.bind(Helper);
    Code.symbol("helper"); // helper(x) = x*x
    Code.mul(Reg::R0, Reg::R1, Reg::R1);
    Code.ret();
  });
  Nulgrind T;
  uint32_t HelperAddr = Img.symbol("helper");
  ASSERT_NE(HelperAddr, 0u);
  RunReport R = runUnderCoreWith(
      Img, &T, {}, "", ~0ull, [&](Core &C) {
        C.redirectSymbolToHost(
            "victim", [HelperAddr](Core &Core_, ThreadState &TS) {
              uint32_t X = TS.gpr(1);
              uint32_t Sq = Core_.callGuest(TS, HelperAddr, {X});
              TS.setGpr(0, Sq + 1); // wrapper post-processing
            });
      });
  EXPECT_EQ(R.ExitCode, 17); // 4*4 + 1
}

TEST(Redirect, GuestToGuestRedirect) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Label A = Code.newLabel(), B = Code.newLabel();
    Code.call(A);
    Code.ret();
    Code.bind(A);
    Code.symbol("fnA");
    Code.movi(Reg::R0, 1);
    Code.ret();
    Code.bind(B);
    Code.symbol("fnB");
    Code.movi(Reg::R0, 2);
    Code.ret();
  });
  Nulgrind T;
  uint32_t FromA = Img.symbol("fnA"), ToB = Img.symbol("fnB");
  RunReport R = runUnderCoreWith(Img, &T, {}, "", ~0ull, [&](Core &C) {
    C.redirectGuest(FromA, ToB);
  });
  EXPECT_EQ(R.ExitCode, 2);
}

//===----------------------------------------------------------------------===//
// Self-modifying code (Section 3.16)
//===----------------------------------------------------------------------===//

TEST(Smc, StackTrampolineDetectedByDefault) {
  // Write a tiny function onto the stack, run it, patch it, run again.
  // With the default --smc-check=stack the change must be noticed.
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    // Build "movi r0, 5; ret" on the stack, call it.
    Code.addi(Reg::R6, Reg::SP, -32);
    // movi r0,5 encoding: 02 00 05 00 00 00 ; ret: 32
    Code.movi(Reg::R2, 0x00050002); // bytes 02 00 05 00 (little endian)
    Code.st(Reg::R6, 0, Reg::R2);
    Code.movi(Reg::R2, 0x00320000); // bytes 00 00 32 00
    Code.st(Reg::R6, 4, Reg::R2);
    Code.callr(Reg::R6);
    Code.mov(Reg::R7, Reg::R0); // 5
    // Patch the immediate to 9 and rerun.
    Code.movi(Reg::R2, 0x00090002);
    Code.st(Reg::R6, 0, Reg::R2);
    Code.callr(Reg::R6);
    Code.add(Reg::R0, Reg::R0, Reg::R7); // 9 + 5
    Code.ret();
  });
  // Stack code needs execute permission: relax the whole stack for this
  // test by running code that mprotects it... simpler: the loader maps the
  // stack RW; make it RWX via mprotect from the guest.
  GuestImage Img2 = buildProgram([](Assembler &Code, Assembler &,
                                    GuestLibLabels &) {
    Code.movi(Reg::R0, SysMprotect);
    Code.movi(Reg::R1, ClientStackTop - (1u << 20));
    Code.movi(Reg::R2, 1u << 20);
    Code.movi(Reg::R3, 7); // rwx
    Code.sys();
    Code.addi(Reg::R6, Reg::SP, -32);
    Code.movi(Reg::R2, 0x00050002);
    Code.st(Reg::R6, 0, Reg::R2);
    Code.movi(Reg::R2, 0x00320000);
    Code.st(Reg::R6, 4, Reg::R2);
    Code.callr(Reg::R6);
    Code.mov(Reg::R7, Reg::R0);
    Code.movi(Reg::R2, 0x00090002);
    Code.st(Reg::R6, 0, Reg::R2);
    Code.callr(Reg::R6);
    Code.add(Reg::R0, Reg::R0, Reg::R7);
    Code.ret();
  });
  (void)Img;
  Nulgrind T;
  RunReport R = runUnderCore(Img2, &T, {"--smc-check=stack"});
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 14); // 5 then 9: change detected
  EXPECT_GE(R.Stats.SmcRetranslations, 1u);

  // With --smc-check=none the stale translation keeps running: 5 + 5.
  Nulgrind T2;
  RunReport R2 = runUnderCore(Img2, &T2, {"--smc-check=none"});
  ASSERT_TRUE(R2.Completed);
  EXPECT_EQ(R2.ExitCode, 10);
}

TEST(Smc, DiscardTranslationsRequest) {
  // JIT-style: patch code in the *data* segment (smc-check=stack misses
  // it), then use the DISCARD_TRANSLATIONS client request.
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &) {
    Label JitBuf = Data.boundLabel();
    Data.emitZeros(32);
    uint32_t Buf = Data.labelAddr(JitBuf);
    Code.movi(Reg::R0, SysMprotect);
    Code.movi(Reg::R1, Buf & ~4095u);
    Code.movi(Reg::R2, 8192);
    Code.movi(Reg::R3, 7);
    Code.sys();
    Code.movi(Reg::R6, Buf);
    Code.movi(Reg::R2, 0x00050002);
    Code.st(Reg::R6, 0, Reg::R2);
    Code.movi(Reg::R2, 0x00320000);
    Code.st(Reg::R6, 4, Reg::R2);
    Code.callr(Reg::R6);
    Code.mov(Reg::R7, Reg::R0); // 5
    Code.movi(Reg::R2, 0x00090002);
    Code.st(Reg::R6, 0, Reg::R2);
    // Without the request the stale translation would run again.
    Code.movi(Reg::R0, CrDiscardTranslations);
    Code.mov(Reg::R1, Reg::R6);
    Code.movi(Reg::R2, 8);
    Code.clreq();
    Code.callr(Reg::R6);
    Code.add(Reg::R0, Reg::R0, Reg::R7);
    Code.ret();
  });
  Nulgrind T;
  RunReport R = runUnderCore(Img, &T, {"--smc-check=none"});
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 14);
}

//===----------------------------------------------------------------------===//
// Signals (Section 3.15)
//===----------------------------------------------------------------------===//

TEST(Signals, HandlerRunsAndSigreturnRestores) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &) {
    Label Handler = Code.newLabel();
    Label Counter = Data.boundLabel();
    Data.emitZeros(4);
    uint32_t CAddr = Data.labelAddr(Counter);
    // install handler for SIGUSR1
    Code.movi(Reg::R0, SysSigaction);
    Code.movi(Reg::R1, SigUSR1);
    Code.leai(Reg::R2, Handler);
    Code.sys();
    // raise it twice; r6 must survive delivery
    Code.movi(Reg::R6, 1234);
    Code.movi(Reg::R0, SysKill);
    Code.movi(Reg::R1, 0); // self
    Code.movi(Reg::R2, SigUSR1);
    Code.sys();
    Code.movi(Reg::R0, SysKill);
    Code.movi(Reg::R1, 0);
    Code.movi(Reg::R2, SigUSR1);
    Code.sys();
    Code.movi(Reg::R3, CAddr);
    Code.ld(Reg::R0, Reg::R3, 0); // handler ran twice -> 2
    Code.cmpi(Reg::R6, 1234);
    Label Ok = Code.newLabel();
    Code.beq(Ok);
    Code.movi(Reg::R0, 99); // register clobbered: fail
    Code.bind(Ok);
    Code.ret();
    // handler: counter++ (clobbers r6 deliberately; sigreturn must undo)
    Code.bind(Handler);
    Code.movi(Reg::R6, 777);
    Code.movi(Reg::R3, CAddr);
    Code.ld(Reg::R4, Reg::R3, 0);
    Code.addi(Reg::R4, Reg::R4, 1);
    Code.st(Reg::R3, 0, Reg::R4);
    Code.ret(); // returns to the sigreturn trampoline
  });
  Nulgrind T;
  RunReport R = runUnderCore(Img, &T);
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_EQ(R.Stats.SignalsDelivered, 2u);
}

TEST(Signals, SegvHandlerCatchesFault) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &Lib) {
    Label Handler = Code.newLabel();
    Code.movi(Reg::R0, SysSigaction);
    Code.movi(Reg::R1, SigSEGV);
    Code.leai(Reg::R2, Handler);
    Code.sys();
    Code.movi(Reg::R1, 0x00F00000);
    Code.ld(Reg::R2, Reg::R1, 0); // faults; handler exits(55)
    Code.movi(Reg::R0, 1);        // not reached
    Code.ret();
    Code.bind(Handler);
    Code.movi(Reg::R1, 55);
    Code.call(Lib.Exit);
  });
  Nulgrind T;
  RunReport R = runUnderCore(Img, &T);
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 55);
}

//===----------------------------------------------------------------------===//
// Threads (Section 3.14)
//===----------------------------------------------------------------------===//

TEST(Threads, SerialisedExecutionWithClone) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &) {
    Label ThreadFn = Code.newLabel();
    Label Flag = Data.boundLabel();
    Data.emitZeros(4);
    uint32_t FlagAddr = Data.labelAddr(Flag);
    // mmap a stack for the child.
    Code.movi(Reg::R0, SysMmap);
    Code.movi(Reg::R1, 0);
    Code.movi(Reg::R2, 65536);
    Code.movi(Reg::R3, 3);
    Code.movi(Reg::R4, 0);
    Code.sys();
    Code.addi(Reg::R2, Reg::R0, 65536); // child SP = top
    // clone(entry, stack, arg=21)
    Code.movi(Reg::R0, SysClone);
    Code.leai(Reg::R1, ThreadFn);
    Code.movi(Reg::R3, 21);
    Code.sys();
    // spin until the child stores arg*2
    Code.movi(Reg::R3, FlagAddr);
    Label Wait = Code.boundLabel();
    Code.movi(Reg::R0, SysYield);
    Code.sys();
    Code.ld(Reg::R4, Reg::R3, 0);
    Code.cmpi(Reg::R4, 0);
    Code.beq(Wait);
    Code.mov(Reg::R0, Reg::R4);
    Code.ret();
    // child: flag = arg*2; exit_thread
    Code.bind(ThreadFn);
    Code.shli(Reg::R4, Reg::R1, 1);
    Code.movi(Reg::R3, FlagAddr);
    Code.st(Reg::R3, 0, Reg::R4);
    Code.movi(Reg::R0, SysExitThread);
    Code.movi(Reg::R1, 0);
    Code.sys();
  });
  Nulgrind T;
  RunReport R = runUnderCore(Img, &T);
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 42);
  EXPECT_GE(R.Stats.ThreadSwitches, 1u);
}

//===----------------------------------------------------------------------===//
// Translation table / dispatcher
//===----------------------------------------------------------------------===//

TEST(Dispatch, FastCacheHitRateIsHigh) {
  // A loopy program: the paper reports ~98% for the direct-mapped cache.
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Code.movi(Reg::R1, 0);
    Label Loop = Code.boundLabel();
    Code.addi(Reg::R1, Reg::R1, 1);
    Code.cmpi(Reg::R1, 20000);
    Code.blt(Loop);
    Code.movi(Reg::R0, 0);
    Code.ret();
  });
  Nulgrind T;
  RunReport R = runUnderCore(Img, &T);
  ASSERT_TRUE(R.Completed);
  double Hits = static_cast<double>(R.Stats.FastCacheHits);
  double Total = Hits + static_cast<double>(R.Stats.FastCacheMisses);
  EXPECT_GT(Hits / Total, 0.95);
}

TEST(Dispatch, ChainingReducesDispatches) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Code.movi(Reg::R1, 0);
    Label Loop = Code.boundLabel();
    Code.addi(Reg::R1, Reg::R1, 1);
    Code.cmpi(Reg::R1, 20000);
    Code.blt(Loop);
    Code.movi(Reg::R0, 77);
    Code.ret();
  });
  Nulgrind T1, T2;
  RunReport Plain = runUnderCore(Img, &T1, {"--chaining=no"});
  RunReport Chained = runUnderCore(Img, &T2, {"--chaining=yes"});
  ASSERT_TRUE(Plain.Completed);
  ASSERT_TRUE(Chained.Completed);
  EXPECT_EQ(Plain.ExitCode, 77);
  EXPECT_EQ(Chained.ExitCode, 77);
  EXPECT_GT(Chained.Stats.ChainedTransfers, 0u);
  // Same blocks executed either way.
  EXPECT_EQ(Plain.Stats.BlocksDispatched, Chained.Stats.BlocksDispatched);
}

TEST(Dispatch, MunmapInvalidatesTranslations) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    // Run code from an mmap'd page, munmap it, remap and write different
    // code, run again: must not see the old translation.
    Code.movi(Reg::R0, SysMmap);
    Code.movi(Reg::R1, 0x50000000);
    Code.movi(Reg::R2, 4096);
    Code.movi(Reg::R3, 7);
    Code.movi(Reg::R4, 1); // fixed
    Code.sys();
    Code.mov(Reg::R6, Reg::R0);
    Code.movi(Reg::R2, 0x00050002); // movi r0,5 ; ret
    Code.st(Reg::R6, 0, Reg::R2);
    Code.movi(Reg::R2, 0x00320000);
    Code.st(Reg::R6, 4, Reg::R2);
    Code.callr(Reg::R6);
    Code.mov(Reg::R7, Reg::R0);
    Code.movi(Reg::R0, SysMunmap);
    Code.mov(Reg::R1, Reg::R6);
    Code.movi(Reg::R2, 4096);
    Code.sys();
    Code.movi(Reg::R0, SysMmap);
    Code.movi(Reg::R1, 0x50000000);
    Code.movi(Reg::R2, 4096);
    Code.movi(Reg::R3, 7);
    Code.movi(Reg::R4, 1);
    Code.sys();
    Code.mov(Reg::R6, Reg::R0);
    Code.movi(Reg::R2, 0x00090002); // movi r0,9 ; ret
    Code.st(Reg::R6, 0, Reg::R2);
    Code.movi(Reg::R2, 0x00320000);
    Code.st(Reg::R6, 4, Reg::R2);
    Code.callr(Reg::R6);
    Code.add(Reg::R0, Reg::R0, Reg::R7);
    Code.ret();
  });
  Nulgrind T;
  RunReport R = runUnderCore(Img, &T, {"--smc-check=none"});
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 14);
}

TEST(Dispatch, MmapIntoCoreRegionRefused) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Code.movi(Reg::R0, SysMmap);
    Code.movi(Reg::R1, AddressSpace::CoreBase + 0x100000);
    Code.movi(Reg::R2, 4096);
    Code.movi(Reg::R3, 3);
    Code.movi(Reg::R4, 1); // fixed: must fail (pre-checked, Section 3.10)
    Code.sys();
    Code.ret();
  });
  Nulgrind T;
  RunReport R = runUnderCore(Img, &T);
  EXPECT_EQ(static_cast<uint32_t>(R.ExitCode), SysErr);
}

//===----------------------------------------------------------------------===//
// Additional core behaviours
//===----------------------------------------------------------------------===//

TEST(Core, LogFileOptionRedirectsToolOutput) {
  std::string Path = "/tmp/vg_core_logfile_test.txt";
  std::remove(Path.c_str());
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &) {
    Label Msg = Data.boundLabel();
    Data.emitString("to-the-log");
    Code.movi(Reg::R0, CrPrint);
    Code.movi(Reg::R1, Data.labelAddr(Msg));
    Code.clreq();
    Code.movi(Reg::R0, 0);
    Code.ret();
  });
  {
    Core C(nullptr);
    C.options().parse({std::string("--log-file=") + Path});
    C.applyOptions();
    C.loadImage(Img);
    C.run();
  }
  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[64] = {};
  [[maybe_unused]] size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  std::remove(Path.c_str());
  EXPECT_STREQ(Buf, "to-the-log");
}

TEST(Core, QuantumPreemptsSpinningThread) {
  // Thread A spins forever; the main thread must still make progress and
  // exit the process (the 100k-block quantum forces the switch).
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Label Spin = Code.newLabel();
    // mmap a stack, clone the spinner.
    Code.movi(Reg::R0, SysMmap);
    Code.movi(Reg::R1, 0);
    Code.movi(Reg::R2, 65536);
    Code.movi(Reg::R3, 3);
    Code.movi(Reg::R4, 0);
    Code.sys();
    Code.addi(Reg::R2, Reg::R0, 65536);
    Code.movi(Reg::R0, SysClone);
    Code.leai(Reg::R1, Spin);
    Code.movi(Reg::R3, 0);
    Code.sys();
    Code.movi(Reg::R0, 42); // exits the whole process via main's return
    Code.ret();
    Code.bind(Spin);
    Label Loop = Code.boundLabel();
    Code.addi(Reg::R4, Reg::R4, 1);
    Code.jmp(Loop);
  });
  Nulgrind T;
  RunReport R = runUnderCore(Img, &T, {}, "", /*MaxBlocks=*/5'000'000);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(Core, RegisteredAltStackSuppressesSwitchEvents) {
  // Register a small malloc'd region as a stack; moving SP into it must be
  // treated as a stack switch (no die_mem_stack for the jump) even though
  // the delta is below the threshold.
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &Lib) {
    Code.movi(Reg::R1, 4096);
    Code.call(Lib.Malloc);
    Code.addi(Reg::R6, Reg::R0, 4096); // new stack top
    Code.movi(Reg::R0, CrStackRegister);
    Code.mov(Reg::R1, Reg::R6);
    Code.addi(Reg::R1, Reg::R1, -4096);
    Code.mov(Reg::R2, Reg::R6);
    Code.clreq();
    Code.mov(Reg::R7, Reg::SP); // save old SP
    Code.mov(Reg::SP, Reg::R6); // switch!
    Code.push(Reg::R7);         // use the new stack a bit
    Code.pop(Reg::R7);
    Code.mov(Reg::SP, Reg::R7); // switch back
    Code.movi(Reg::R0, 0);
    Code.ret();
  });
  EventRecorder T;
  RunReport R = runUnderCore(Img, &T);
  ASSERT_TRUE(R.Completed);
  // Only small (4-byte) stack events from calls/pushes; the two switches
  // contributed nothing.
  EXPECT_LT(T.StackBytesDied, 4096u);
}

TEST(Core, CallGuestNestsInsideHostReplacement) {
  // Host replacement -> guest helper -> (recursively) another guest call.
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Label Target = Code.newLabel(), Inc = Code.newLabel();
    Code.movi(Reg::R1, 5);
    Code.call(Target);
    Code.ret();
    Code.bind(Target);
    Code.symbol("target");
    Code.movi(Reg::R0, 0); // replaced
    Code.ret();
    Code.bind(Inc);
    Code.symbol("inc"); // inc(x) = x + 1, calls nothing
    Code.addi(Reg::R0, Reg::R1, 1);
    Code.ret();
  });
  Nulgrind T;
  uint32_t IncAddr = Img.symbol("inc");
  RunReport R = runUnderCoreWith(
      Img, &T, {}, "", ~0ull, [&](Core &C) {
        C.redirectSymbolToHost("target", [IncAddr](Core &Core_,
                                                   ThreadState &TS) {
          // inc(inc(inc(x))): three nested dispatch loops.
          uint32_t V = TS.gpr(1);
          for (int I = 0; I != 3; ++I)
            V = Core_.callGuest(TS, IncAddr, {V});
          TS.setGpr(0, V);
        });
      });
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 8);
}

} // namespace
