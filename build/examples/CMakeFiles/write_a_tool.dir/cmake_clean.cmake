file(REMOVE_RECURSE
  "CMakeFiles/write_a_tool.dir/write_a_tool.cpp.o"
  "CMakeFiles/write_a_tool.dir/write_a_tool.cpp.o.d"
  "write_a_tool"
  "write_a_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_a_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
