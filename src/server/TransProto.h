//===-- server/TransProto.h - Translation-server wire protocol -*- C++ -*-==//
///
/// \file
/// The framing layer shared by vgserve and the --tt-server client: a
/// length-prefixed frame protocol over a Unix-domain stream socket.
///
///   Frame := Magic "VGTP" (4) | Type (u8) | BodyLen (u32 LE) | Body
///
/// Request bodies (client -> daemon):
///   Get    := ConfigHash u64 | Key u64
///   Put    := ConfigHash u64 | Key u64 | entry file image (VGTC bytes)
///   Poison := ConfigHash u64 | All u8 | Addr u32 | Len u32
///   Ping   := (empty)
///
/// Response bodies (daemon -> client):
///   Hit  := entry file image      Miss := (empty)
///   Ok   := (empty)               Err  := (empty)
///
/// Two deliberate properties:
///
///  - The payload is the *on-disk file image* (TransCache's VGTC format),
///    checksummed and position-independent. The daemon never decodes host
///    pointers and the client re-validates every fetched image exactly as
///    it validates a local --tt-cache file — the socket adds no trust.
///  - Every read honours a deadline. A frame with a bad magic or an
///    oversized body is Malformed; a peer that stalls mid-frame is an
///    Error, distinct from an idle Timeout before any byte arrived, so
///    servers can keep idle connections open while dropping wedged ones.
///
//===----------------------------------------------------------------------===//
#ifndef VG_SERVER_TRANSPROTO_H
#define VG_SERVER_TRANSPROTO_H

#include <cstdint>
#include <string>
#include <vector>

namespace vg {
namespace srv {

constexpr char FrameMagic[4] = {'V', 'G', 'T', 'P'};
constexpr size_t FrameHeaderSize = 4 + 1 + 4;
/// An entry is never remotely this big (TransCache rejects reads over
/// 64 MiB too); anything larger is a malformed or hostile frame.
constexpr uint32_t MaxFrameBody = 64u << 20;

enum class MsgType : uint8_t {
  Get = 1,
  Put = 2,
  Poison = 3,
  Ping = 4,
  Hit = 16,
  Miss = 17,
  Ok = 18,
  Err = 19,
};

struct Frame {
  MsgType Type = MsgType::Err;
  std::vector<uint8_t> Body;
};

enum class IoResult {
  Ok,
  Timeout,   ///< deadline expired before ANY byte of the frame arrived
  Eof,       ///< peer closed cleanly at a frame boundary
  Malformed, ///< bad magic, oversized body, or a non-frame byte stream
  Error,     ///< socket error, or a peer that stalled/closed mid-frame
};

/// Little-endian field helpers shared by both sides.
void putU32(std::vector<uint8_t> &B, uint32_t V);
void putU64(std::vector<uint8_t> &B, uint64_t V);
uint32_t getU32(const uint8_t *P);
uint64_t getU64(const uint8_t *P);

/// Sends one complete frame. \p TimeoutMs bounds the whole send (-1 =
/// block); a slow or dead peer settles as Timeout/Error, never a stall.
IoResult writeFrame(int Fd, MsgType Type, const uint8_t *Body, size_t Len,
                    int TimeoutMs);

/// Receives one complete frame within \p TimeoutMs (-1 = block).
IoResult readFrame(int Fd, Frame &Out, int TimeoutMs);

/// Connects to the AF_UNIX stream socket at \p Path; -1 on failure.
int connectUnix(const std::string &Path);

/// Binds and listens on \p Path (unlinking any stale socket first);
/// -1 on failure (path too long for sun_path, bind/listen error).
int listenUnix(const std::string &Path, int Backlog);

} // namespace srv
} // namespace vg

#endif // VG_SERVER_TRANSPROTO_H
