//===-- examples/write_a_tool.cpp - Build your own plug-in ----------------==//
///
/// \file
/// The tool-writing tutorial: a complete, working branch profiler in ~60
/// lines. It shows the three things most tools do:
///
///   1. instrument(): add analysis IR / helper calls to each superblock
///      (here: a dirty call before every conditional exit, with taken /
///      not-taken discovered via the guard expression's shadow... no —
///      via a second call at the fall-through);
///   2. keep host-side state keyed by guest addresses;
///   3. report through the core's output sink at fini().
///
/// "Writing a new tool plug-in is much easier than writing a new DBA tool
/// from scratch" (Section 3.1) — this file is the evidence.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "guestlib/GuestLib.h"

#include <cstdio>
#include <map>

using namespace vg;
using namespace vg::vg1;

namespace {

/// A branch profiler: counts, for every conditional branch, how often it
/// was reached and how often it was taken.
class BranchProfiler : public Tool {
public:
  const char *name() const override { return "branch-profiler"; }

  void init(Core &C) override { TheCore = &C; }

  void instrument(ir::IRSB &SB) override {
    using namespace ir;
    std::vector<Stmt *> Old;
    Old.swap(SB.stmts());
    uint32_t CurPC = 0;
    for (Stmt *S : Old) {
      if (S->Kind == StmtKind::IMark)
        CurPC = S->IAddr;
      if (S->Kind == StmtKind::Exit && S->JK == JumpKind::Boring) {
        // reached++ unconditionally...
        SB.dirty(&ReachedCallee, {SB.constI64(CurPC)});
        // ...taken++ guarded by the branch's own condition.
        SB.dirty(&TakenCallee, {SB.constI64(CurPC)}, NoTmp, S->Guard);
      }
      SB.append(S);
    }
  }

  void fini(int ExitCode) override {
    OutputSink &Out = TheCore->output();
    Out.printf("==branch-profiler== %zu conditional branches observed\n",
               Counts.size());
    for (const auto &[PC, C] : Counts) {
      Out.printf("==branch-profiler== 0x%08X reached %8llu taken %8llu "
                 "(%.0f%%)\n",
                 PC, static_cast<unsigned long long>(C.first),
                 static_cast<unsigned long long>(C.second),
                 C.first ? 100.0 * static_cast<double>(C.second) /
                               static_cast<double>(C.first)
                         : 0.0);
    }
  }

  // Helpers: the Env pointer carries the running tool.
  static uint64_t onReached(void *Env, uint64_t PC, uint64_t, uint64_t,
                            uint64_t) {
    auto *T = static_cast<BranchProfiler *>(
        static_cast<ExecContext *>(Env)->Tool);
    ++T->Counts[static_cast<uint32_t>(PC)].first;
    return 0;
  }
  static uint64_t onTaken(void *Env, uint64_t PC, uint64_t, uint64_t,
                          uint64_t) {
    auto *T = static_cast<BranchProfiler *>(
        static_cast<ExecContext *>(Env)->Tool);
    ++T->Counts[static_cast<uint32_t>(PC)].second;
    return 0;
  }

private:
  static const ir::Callee ReachedCallee, TakenCallee;
  Core *TheCore = nullptr;
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> Counts;
};

const ir::Callee BranchProfiler::ReachedCallee = {"bp_reached",
                                                  &BranchProfiler::onReached,
                                                  0};
const ir::Callee BranchProfiler::TakenCallee = {"bp_taken",
                                                &BranchProfiler::onTaken, 0};

} // namespace

int main() {
  // A program with branches of very different biases.
  Assembler Code(0x1000);
  Assembler Data(0x100000);
  [[maybe_unused]] GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);
  Code.bind(Main);
  Code.movi(Reg::R1, 0);
  Label Loop = Code.boundLabel();
  // ~12%-taken branch: (i & 7) == 0
  Code.andi(Reg::R2, Reg::R1, 7);
  Code.cmpi(Reg::R2, 0);
  Label Rare = Code.newLabel();
  Code.beq(Rare);
  Code.bind(Rare);
  Code.addi(Reg::R1, Reg::R1, 1);
  Code.cmpi(Reg::R1, 1000); // 99.9%-taken back edge
  Code.blt(Loop);
  Code.movi(Reg::R0, 0);
  Code.ret();
  GuestImage Img =
      GuestImageBuilder().addCode(Code).addData(Data).entry(Entry).build();

  BranchProfiler Tool;
  RunReport R = runUnderCore(Img, &Tool);
  std::printf("%s", R.ToolOutput.c_str());
  return 0;
}
