//===-- bench/sec314_sched.cpp - Sections 3.14/3.15: scheduler soak -------==//
///
/// \file
/// Soak-tests the thread scheduler and signal machinery (Sections 3.14 and
/// 3.15) under deterministic fault injection. For each seed the "sigmt"
/// workload — two cloned children storming each other and the main thread
/// with signals — runs under Nulgrind and Memcheck with every fault kind
/// enabled, and must:
///  - exit cleanly (status 0, no fatal signal) whatever the fault plan;
///  - produce zero Memcheck errors (no false positives from signal
///    frames, partial transfers, or failed syscalls);
///  - reproduce a byte-identical --trace-events dump when the same seed
///    is replayed.
///
/// VG_SOAK_QUICK=1 in the environment shrinks the run from 50 seeds to 5
/// for use as a smoke test (scripts/verify.sh).
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "tools/Memcheck.h"
#include "tools/Nulgrind.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace vg;

namespace {

/// Extracts the "=== event trace ... === end event trace ===" block from a
/// run's tool-output channel; empty if no dump was found.
std::string extractTrace(const std::string &Output) {
  size_t Begin = Output.find("=== event trace");
  if (Begin == std::string::npos)
    return "";
  const char *EndMark = "=== end event trace ===";
  size_t End = Output.find(EndMark, Begin);
  if (End == std::string::npos)
    return "";
  return Output.substr(Begin, End + std::string(EndMark).size() - Begin);
}

/// True if the Memcheck ERROR SUMMARY line reports zero errors.
bool zeroMemcheckErrors(const std::string &Output) {
  size_t Pos = Output.find("ERROR SUMMARY: ");
  if (Pos == std::string::npos)
    return false;
  return Output.compare(Pos, 22, "ERROR SUMMARY: 0 error") == 0;
}

std::vector<std::string> soakOptions(uint64_t Seed) {
  char Spec[64];
  std::snprintf(Spec, sizeof Spec, "--fault-inject=all,seed=%llu",
                static_cast<unsigned long long>(Seed));
  return {Spec, "--trace-events=yes", "--trace-dump=yes", "--chaining=yes",
          "--hot-threshold=64"};
}

int Failures = 0;

void fail(uint64_t Seed, const char *Tool, const char *What) {
  std::printf("FAIL seed=%llu tool=%s: %s\n",
              static_cast<unsigned long long>(Seed), Tool, What);
  ++Failures;
}

/// One seed under one tool: run twice, check clean exits and replay.
void soakOne(const GuestImage &Img, uint64_t Seed, bool UseMemcheck) {
  const char *Name = UseMemcheck ? "memcheck" : "nulgrind";
  std::string Trace[2];
  for (int Rep = 0; Rep != 2; ++Rep) {
    Nulgrind Null;
    Memcheck Mc; // fresh per run: tools carry per-run state
    Tool *T = UseMemcheck ? static_cast<Tool *>(&Mc)
                          : static_cast<Tool *>(&Null);
    RunReport R = runUnderCore(Img, T, soakOptions(Seed));
    if (!R.Completed || R.FatalSignal) {
      fail(Seed, Name, "did not run to exit");
      return;
    }
    if (R.ExitCode != 0) {
      fail(Seed, Name, "nonzero exit code");
      return;
    }
    if (UseMemcheck && !zeroMemcheckErrors(R.ToolOutput)) {
      fail(Seed, Name, "Memcheck reported errors (false positives)");
      return;
    }
    Trace[Rep] = extractTrace(R.ToolOutput);
    if (Trace[Rep].empty()) {
      fail(Seed, Name, "no event-trace dump in tool output");
      return;
    }
  }
  if (Trace[0] != Trace[1])
    fail(Seed, Name, "replay trace differs (nondeterminism)");
}

} // namespace

int main() {
  bool Quick = std::getenv("VG_SOAK_QUICK") != nullptr;
  const uint64_t NSeeds = Quick ? 5 : 50;

  std::printf("== Sections 3.14/3.15: scheduler/signal fault-injection "
              "soak ==\n");
  std::printf("workload=sigmt seeds=%llu tools=nulgrind,memcheck "
              "(each seed run twice for replay)\n",
              static_cast<unsigned long long>(NSeeds));

  GuestImage Img = buildWorkload("sigmt", 1);
  for (uint64_t Seed = 1; Seed <= NSeeds; ++Seed) {
    soakOne(Img, Seed, /*UseMemcheck=*/false);
    soakOne(Img, Seed, /*UseMemcheck=*/true);
    if (Seed % 10 == 0 || Seed == NSeeds)
      std::printf("  ... %llu/%llu seeds done\n",
                  static_cast<unsigned long long>(Seed),
                  static_cast<unsigned long long>(NSeeds));
  }

  if (Failures) {
    std::printf("RESULT: %d failure(s)\n", Failures);
    return 1;
  }
  std::printf("RESULT: all %llu seeds clean — deterministic replay, zero "
              "Memcheck errors\n",
              static_cast<unsigned long long>(NSeeds));
  return 0;
}
