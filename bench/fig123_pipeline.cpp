//===-- bench/fig123_pipeline.cpp - Reproduces Figures 1, 2 and 3 ---------==//
///
/// \file
/// Regenerates the paper's three worked examples on the VG1 equivalent of
/// its x86 snippet (a scaled-index load, a flag-setting add, an indirect
/// jump):
///
///   Figure 1: machine code -> tree IR disassembly (Phase 1), plus the
///             flat/optimised form after Phase 2.
///   Figure 2: the same block after Memcheck instrumentation — shadow
///             operations preceding originals, guarded error-helper calls,
///             shadow loads via helper, first-class shadow register PUTs.
///   Figure 3: register allocation before/after — virtual registers
///             replaced and moves coalesced away.
///
//===----------------------------------------------------------------------===//

#include "core/Translate.h"
#include "guest/Assembler.h"
#include "guest/Disasm.h"
#include "tools/Memcheck.h"

#include <cstdio>

using namespace vg;
using namespace vg::vg1;

int main() {
  // The paper's block, in VG1:
  //   0x24F275: ldx r0, [r3 + r0<<2 - 16180]   (movl -16180(%ebx,%eax,4))
  //   0x24F27C: add r0, r0, r3                 (addl %ebx,%eax)
  //   0x24F27F: jmp* r0                        (jmp*l %eax)
  Assembler A(0x24F275);
  A.ldx(Reg::R0, Reg::R3, Reg::R0, 2, -16180);
  A.add(Reg::R0, Reg::R0, Reg::R3);
  A.jmpr(Reg::R0);
  std::vector<uint8_t> Img = A.finalize();

  FetchFn Fetch = [&](uint32_t Addr, uint8_t *Buf,
                      uint32_t MaxLen) -> uint32_t {
    if (Addr < 0x24F275 || Addr >= 0x24F275 + Img.size())
      return 0;
    uint32_t N = std::min<uint32_t>(
        MaxLen, static_cast<uint32_t>(0x24F275 + Img.size() - Addr));
    std::memcpy(Buf, Img.data() + (Addr - 0x24F275), N);
    return N;
  };

  std::printf("== Guest code ==\n%s\n",
              vg1::disassembleRange(Img.data(), Img.size(), 0x24F275)
                  .c_str());

  // Figure 1: no instrumentation.
  {
    TranslationOptions TO;
    TO.Verify = true;
    TranslationArtifacts Art;
    translateBlock(0x24F275, Fetch, TO, &Art);
    std::printf("== Figure 1: disassembly (machine code -> tree IR) ==\n%s\n",
                Art.TreeIR.c_str());
    std::printf("== After Phase 2 (flatten + optimise) ==\n%s\n",
                Art.FlatIR.c_str());
    std::printf("== Figure 3: instruction selection (virtual registers) ==\n"
                "%s\n",
                Art.HostPreAlloc.c_str());
    std::printf("== Figure 3: after linear-scan register allocation "
                "(%u moves coalesced) ==\n%s\n",
                Art.CoalescedMoves, Art.HostPostAlloc.c_str());
  }

  // Figure 2: Memcheck instrumentation. (The tool is used standalone here:
  // instrument() is a pure IR-to-IR transformation.)
  {
    Memcheck MC;
    TranslationOptions TO;
    TO.Verify = true;
    TO.Instrument = [&](ir::IRSB &SB) { MC.instrument(SB); };
    TranslationArtifacts Art;
    translateBlock(0x24F275, Fetch, TO, &Art);
    std::printf("== Figure 2: Memcheck-instrumented flat IR "
                "(after Phase 4 cleanup; %u statements) ==\n%s\n",
                Art.StmtsAfterOptimise2, Art.OptimisedIR.c_str());
    std::printf("(paper: 18 statements, 11 added by Memcheck — \"the added "
                "analysis code is larger\n and more complex than the "
                "original code\")\n");
  }
  return 0;
}
