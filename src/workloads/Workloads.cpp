//===-- workloads/Workloads.cpp - SPEC-like synthetic workloads -----------==//

#include "workloads/Workloads.h"

#include "core/Core.h"
#include "guestlib/GuestLib.h"
#include "kernel/SimKernel.h"
#include "support/Errors.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <random>

using namespace vg;
using namespace vg::vg1;

namespace {

constexpr uint32_t CodeBase = 0x1000;
constexpr uint32_t DataBase = 0x100000;

using BodyFn = std::function<void(Assembler &Code, Assembler &Data,
                                  GuestLibLabels &Lib, uint32_t Scale)>;

GuestImage build(const BodyFn &Body, uint32_t Scale) {
  Assembler Code(CodeBase);
  Assembler Data(DataBase);
  GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);
  Code.bind(Main);
  Code.symbol("main");
  Body(Code, Data, Lib, Scale);
  return GuestImageBuilder().addCode(Code).addData(Data).entry(Entry).build();
}

/// Emits "checksum in r11 -> print, return 0".
void epilogue(Assembler &C, GuestLibLabels &Lib) {
  C.mov(Reg::R1, Reg::R11);
  C.call(Lib.PrintU32);
  C.movi(Reg::R0, 0);
  C.ret();
}

//===----------------------------------------------------------------------===//
// Integer workloads
//===----------------------------------------------------------------------===//

/// bzip2: run-length encode a byte buffer, checksum the encoding.
void wlBzip2(Assembler &C, Assembler &D, GuestLibLabels &Lib,
             uint32_t Scale) {
  const uint32_t N = 4096;
  C.movi(Reg::R1, N);
  C.call(Lib.Malloc);
  C.mov(Reg::R6, Reg::R0); // src
  C.movi(Reg::R1, 2 * N + 16); // +16: the last 32-bit emit may overhang
  C.call(Lib.Malloc);
  C.mov(Reg::R7, Reg::R0); // dst
  // fill src with runs: b = ((i*i) >> 4) & 0xFF
  C.movi(Reg::R2, 0);
  Label Fill = C.boundLabel();
  C.mul(Reg::R3, Reg::R2, Reg::R2);
  C.shri(Reg::R3, Reg::R3, 4);
  C.stx(Reg::R6, Reg::R2, 0, 0, Reg::R3);
  C.addi(Reg::R2, Reg::R2, 1);
  C.cmpi(Reg::R2, N);
  C.blt(Fill);

  C.movi(Reg::R11, 0);                 // checksum
  C.movi(Reg::R12, 6 * Scale);         // outer
  Label Outer = C.boundLabel();
  C.movi(Reg::R8, 0); // i
  C.movi(Reg::R9, 0); // j (output cursor)
  Label Encode = C.boundLabel();
  C.ldx(Reg::R2, Reg::R6, Reg::R8, 0, 0); // b = src[i] (byte via mask)
  C.andi(Reg::R2, Reg::R2, 0xFF);
  C.movi(Reg::R3, 1); // run
  Label RunLoop = C.boundLabel();
  C.add(Reg::R4, Reg::R8, Reg::R3);
  C.cmpi(Reg::R4, N);
  Label RunDone = C.newLabel();
  C.bge(RunDone);
  C.cmpi(Reg::R3, 255);
  C.bge(RunDone);
  C.ldx(Reg::R5, Reg::R6, Reg::R4, 0, 0);
  C.andi(Reg::R5, Reg::R5, 0xFF);
  C.cmp(Reg::R5, Reg::R2);
  C.bne(RunDone);
  C.addi(Reg::R3, Reg::R3, 1);
  C.jmp(RunLoop);
  C.bind(RunDone);
  C.stx(Reg::R7, Reg::R9, 0, 0, Reg::R3); // dst[j] = run (byte store ok via stx low byte? use stb)
  C.add(Reg::R11, Reg::R11, Reg::R3);
  C.add(Reg::R11, Reg::R11, Reg::R2);
  C.addi(Reg::R9, Reg::R9, 2);
  C.add(Reg::R8, Reg::R8, Reg::R3);
  C.cmpi(Reg::R8, N);
  C.blt(Encode);
  C.addi(Reg::R12, Reg::R12, -1);
  C.cmpi(Reg::R12, 0);
  C.bgt(Outer);
  C.andi(Reg::R11, Reg::R11, 0x7FFFFFFF);
  epilogue(C, Lib);
}

/// crafty: bitboard-style bit twiddling (popcounts, rotates, mixes).
void wlCrafty(Assembler &C, Assembler &D, GuestLibLabels &Lib,
              uint32_t Scale) {
  C.movi(Reg::R6, 0x12345678); // x
  C.movi(Reg::R11, 0);         // acc
  C.movi(Reg::R12, 60000 * Scale);
  Label Loop = C.boundLabel();
  // popcount(x) into r4 (classic SWAR)
  C.shri(Reg::R2, Reg::R6, 1);
  C.movi(Reg::R3, 0x55555555);
  C.and_(Reg::R2, Reg::R2, Reg::R3);
  C.sub(Reg::R4, Reg::R6, Reg::R2);
  C.movi(Reg::R3, 0x33333333);
  C.and_(Reg::R2, Reg::R4, Reg::R3);
  C.shri(Reg::R4, Reg::R4, 2);
  C.and_(Reg::R4, Reg::R4, Reg::R3);
  C.add(Reg::R4, Reg::R4, Reg::R2);
  C.shri(Reg::R2, Reg::R4, 4);
  C.add(Reg::R4, Reg::R4, Reg::R2);
  C.movi(Reg::R3, 0x0F0F0F0F);
  C.and_(Reg::R4, Reg::R4, Reg::R3);
  C.movi(Reg::R3, 0x01010101);
  C.mul(Reg::R4, Reg::R4, Reg::R3);
  C.shri(Reg::R4, Reg::R4, 24);
  C.add(Reg::R11, Reg::R11, Reg::R4);
  // rotate-left 7 and mix
  C.shli(Reg::R2, Reg::R6, 7);
  C.shri(Reg::R3, Reg::R6, 25);
  C.or_(Reg::R6, Reg::R2, Reg::R3);
  C.movi(Reg::R3, 0x9E3779B9);
  C.xor_(Reg::R6, Reg::R6, Reg::R3);
  C.vadd8(Reg::R6, Reg::R6, Reg::R4); // a dash of SIMD
  C.addi(Reg::R12, Reg::R12, -1);
  C.cmpi(Reg::R12, 0);
  C.bgt(Loop);
  C.andi(Reg::R11, Reg::R11, 0x7FFFFFFF);
  epilogue(C, Lib);
}

/// gcc: interpret a random bytecode program (heavily branchy).
void wlGcc(Assembler &C, Assembler &D, GuestLibLabels &Lib, uint32_t Scale) {
  // 256 bytecodes, generated deterministically at build time.
  D.align(4);
  Label Prog = D.boundLabel();
  std::mt19937 Rng(42);
  for (int I = 0; I != 256; ++I)
    D.emitU8(static_cast<uint8_t>(Rng() & 0xFF));
  uint32_t ProgAddr = D.labelAddr(Prog);

  C.movi(Reg::R6, 1);  // a
  C.movi(Reg::R7, 2);  // b
  C.movi(Reg::R8, 0);  // vpc
  C.movi(Reg::R11, 0); // acc
  C.movi(Reg::R12, 50000 * Scale);
  C.movi(Reg::R9, ProgAddr);
  Label Loop = C.boundLabel();
  C.ldx(Reg::R2, Reg::R9, Reg::R8, 0, 0);
  C.andi(Reg::R2, Reg::R2, 0xFF); // op
  C.addi(Reg::R8, Reg::R8, 1);
  C.andi(Reg::R8, Reg::R8, 255);
  C.andi(Reg::R3, Reg::R2, 7);
  Label Next = C.newLabel();
  Label C1 = C.newLabel(), C2 = C.newLabel(), C3 = C.newLabel(),
        C4 = C.newLabel(), C5 = C.newLabel(), C6 = C.newLabel(),
        C7 = C.newLabel();
  C.cmpi(Reg::R3, 1);
  C.beq(C1);
  C.cmpi(Reg::R3, 2);
  C.beq(C2);
  C.cmpi(Reg::R3, 3);
  C.beq(C3);
  C.cmpi(Reg::R3, 4);
  C.beq(C4);
  C.cmpi(Reg::R3, 5);
  C.beq(C5);
  C.cmpi(Reg::R3, 6);
  C.beq(C6);
  C.cmpi(Reg::R3, 7);
  C.beq(C7);
  C.add(Reg::R6, Reg::R6, Reg::R7); // case 0
  C.jmp(Next);
  C.bind(C1);
  C.xor_(Reg::R7, Reg::R7, Reg::R6);
  C.jmp(Next);
  C.bind(C2);
  C.shli(Reg::R6, Reg::R6, 1);
  C.jmp(Next);
  C.bind(C3);
  C.cmp(Reg::R6, Reg::R7);
  Label NoSwap = C.newLabel();
  C.bge(NoSwap);
  C.xor_(Reg::R6, Reg::R6, Reg::R7);
  C.xor_(Reg::R7, Reg::R7, Reg::R6);
  C.xor_(Reg::R6, Reg::R6, Reg::R7);
  C.bind(NoSwap);
  C.jmp(Next);
  C.bind(C4);
  C.sub(Reg::R6, Reg::R6, Reg::R7);
  C.jmp(Next);
  C.bind(C5);
  C.add(Reg::R7, Reg::R7, Reg::R2);
  C.jmp(Next);
  C.bind(C6);
  C.shri(Reg::R6, Reg::R6, 1);
  C.jmp(Next);
  C.bind(C7);
  C.movi(Reg::R4, 5);
  C.mul(Reg::R7, Reg::R7, Reg::R4);
  C.addi(Reg::R7, Reg::R7, 1);
  C.bind(Next);
  C.add(Reg::R11, Reg::R11, Reg::R6);
  C.addi(Reg::R12, Reg::R12, -1);
  C.cmpi(Reg::R12, 0);
  C.bgt(Loop);
  C.andi(Reg::R11, Reg::R11, 0x7FFFFFFF);
  epilogue(C, Lib);
}

/// gzip: LZ-style window matching over text-ish data.
void wlGzip(Assembler &C, Assembler &D, GuestLibLabels &Lib, uint32_t Scale) {
  const uint32_t N = 2048;
  D.align(4);
  Label Buf = D.boundLabel();
  std::mt19937 Rng(7);
  for (uint32_t I = 0; I != N; ++I)
    D.emitU8(static_cast<uint8_t>('a' + (Rng() % 6))); // small alphabet
  uint32_t BufAddr = D.labelAddr(Buf);

  C.movi(Reg::R6, BufAddr);
  C.movi(Reg::R11, 0);
  C.movi(Reg::R12, 2 * Scale);
  Label Outer = C.boundLabel();
  C.movi(Reg::R7, 64); // pos
  Label PosLoop = C.boundLabel();
  C.movi(Reg::R8, 0); // best
  C.movi(Reg::R9, 1); // off
  Label OffLoop = C.boundLabel();
  C.movi(Reg::R10, 0); // l
  Label MatchLoop = C.boundLabel();
  C.cmpi(Reg::R10, 8);
  Label MatchDone = C.newLabel();
  C.bge(MatchDone);
  // buf[pos - off + l] vs buf[pos + l]
  C.sub(Reg::R2, Reg::R7, Reg::R9);
  C.add(Reg::R2, Reg::R2, Reg::R10);
  C.ldx(Reg::R3, Reg::R6, Reg::R2, 0, 0);
  C.andi(Reg::R3, Reg::R3, 0xFF);
  C.add(Reg::R2, Reg::R7, Reg::R10);
  C.ldx(Reg::R4, Reg::R6, Reg::R2, 0, 0);
  C.andi(Reg::R4, Reg::R4, 0xFF);
  C.cmp(Reg::R3, Reg::R4);
  C.bne(MatchDone);
  C.addi(Reg::R10, Reg::R10, 1);
  C.jmp(MatchLoop);
  C.bind(MatchDone);
  C.cmp(Reg::R10, Reg::R8);
  Label NotBest = C.newLabel();
  C.ble(NotBest);
  C.mov(Reg::R8, Reg::R10);
  C.bind(NotBest);
  C.addi(Reg::R9, Reg::R9, 1);
  C.cmpi(Reg::R9, 32);
  C.blt(OffLoop);
  C.add(Reg::R11, Reg::R11, Reg::R8);
  C.addi(Reg::R7, Reg::R7, 1);
  C.cmpi(Reg::R7, N - 8);
  C.blt(PosLoop);
  C.addi(Reg::R12, Reg::R12, -1);
  C.cmpi(Reg::R12, 0);
  C.bgt(Outer);
  C.andi(Reg::R11, Reg::R11, 0x7FFFFFFF);
  epilogue(C, Lib);
}

/// mcf: pointer chasing through a shuffled singly linked list.
void wlMcf(Assembler &C, Assembler &D, GuestLibLabels &Lib, uint32_t Scale) {
  const uint32_t Nodes = 4096;
  // Node layout: [next:4][val:4], precomputed in a shuffled cycle.
  D.align(8);
  Label NodesL = D.boundLabel();
  uint32_t Base = D.labelAddr(NodesL);
  std::vector<uint32_t> Perm(Nodes);
  for (uint32_t I = 0; I != Nodes; ++I)
    Perm[I] = I;
  std::mt19937 Rng(99);
  std::shuffle(Perm.begin() + 1, Perm.end(), Rng); // keep 0 first
  // Node Perm[I] points at node Perm[(I+1) % Nodes]: one shuffled cycle.
  std::vector<uint32_t> NextOf(Nodes), ValOf(Nodes);
  for (uint32_t I = 0; I != Nodes; ++I) {
    NextOf[Perm[I]] = Base + Perm[(I + 1) % Nodes] * 8;
    ValOf[Perm[I]] = Perm[I] * 2654435761u;
  }
  for (uint32_t I = 0; I != Nodes; ++I) {
    D.emitU32(NextOf[I]);
    D.emitU32(ValOf[I]);
  }

  C.movi(Reg::R6, Base); // p
  C.movi(Reg::R11, 0);
  C.movi(Reg::R12, 150000 * Scale);
  Label Loop = C.boundLabel();
  C.ld(Reg::R2, Reg::R6, 4);
  C.add(Reg::R11, Reg::R11, Reg::R2);
  C.ld(Reg::R6, Reg::R6, 0); // p = p->next
  C.addi(Reg::R12, Reg::R12, -1);
  C.cmpi(Reg::R12, 0);
  C.bgt(Loop);
  C.andi(Reg::R11, Reg::R11, 0x7FFFFFFF);
  epilogue(C, Lib);
}

/// parser: tokenise text and match words against a dictionary.
void wlParser(Assembler &C, Assembler &D, GuestLibLabels &Lib,
              uint32_t Scale) {
  static const char *Dict[8] = {"the",  "cat",  "sat",   "on",
                                "mat",  "with", "hat",   "bat"};
  std::mt19937 Rng(5);
  std::string Text;
  for (int I = 0; I != 400; ++I) {
    Text += Dict[Rng() % 8];
    Text += ' ';
  }
  D.align(4);
  Label TextL = D.boundLabel();
  D.emitString(Text);
  uint32_t TextAddr = D.labelAddr(TextL);
  Label DictL = D.boundLabel();
  for (const char *W : Dict)
    for (int I = 0; I != 8; ++I)
      D.emitU8(static_cast<uint8_t>(I < static_cast<int>(strlen(W))
                                        ? W[I]
                                        : 0)); // fixed 8-byte slots
  uint32_t DictAddr = D.labelAddr(DictL);

  C.movi(Reg::R11, 0);
  C.movi(Reg::R12, 12 * Scale);
  Label Outer = C.boundLabel();
  C.movi(Reg::R6, TextAddr); // cursor
  Label Scan = C.boundLabel();
  C.ldb(Reg::R2, Reg::R6, 0);
  C.cmpi(Reg::R2, 0);
  Label EndText = C.newLabel();
  C.beq(EndText);
  C.cmpi(Reg::R2, ' ');
  Label NotSpace = C.newLabel();
  C.bne(NotSpace);
  C.addi(Reg::R6, Reg::R6, 1);
  C.jmp(Scan);
  C.bind(NotSpace);
  // compare the word at r6 against each dictionary slot
  C.movi(Reg::R7, 0); // dict index
  Label DictLoop = C.boundLabel();
  C.shli(Reg::R8, Reg::R7, 3);
  C.movi(Reg::R2, DictAddr);
  C.add(Reg::R8, Reg::R8, Reg::R2); // slot
  C.movi(Reg::R9, 0);               // char index
  Label CmpLoop = C.boundLabel();
  C.ldx(Reg::R2, Reg::R8, Reg::R9, 0, 0);
  C.andi(Reg::R2, Reg::R2, 0xFF);
  C.ldx(Reg::R3, Reg::R6, Reg::R9, 0, 0);
  C.andi(Reg::R3, Reg::R3, 0xFF);
  Label Mismatch = C.newLabel(), WordEnd = C.newLabel();
  Label Matched = C.newLabel(), AfterDict = C.newLabel();
  C.cmpi(Reg::R2, 0);
  C.beq(WordEnd); // dict word ended: check text char is space/NUL
  C.cmp(Reg::R2, Reg::R3);
  C.bne(Mismatch);
  C.addi(Reg::R9, Reg::R9, 1);
  C.jmp(CmpLoop);
  C.bind(WordEnd);
  C.cmpi(Reg::R3, ' ');
  C.beq(Matched);
  C.cmpi(Reg::R3, 0);
  C.beq(Matched);
  C.jmp(Mismatch);
  C.bind(Matched);
  C.addi(Reg::R11, Reg::R11, 1);
  C.jmp(AfterDict);
  C.bind(Mismatch);
  C.addi(Reg::R7, Reg::R7, 1);
  C.cmpi(Reg::R7, 8);
  C.blt(DictLoop);
  C.bind(AfterDict);
  // skip the word
  Label Skip = C.boundLabel();
  C.ldb(Reg::R2, Reg::R6, 0);
  C.cmpi(Reg::R2, ' ');
  Label SkipDone = C.newLabel();
  C.beq(SkipDone);
  C.cmpi(Reg::R2, 0);
  C.beq(EndText);
  C.addi(Reg::R6, Reg::R6, 1);
  C.jmp(Skip);
  C.bind(SkipDone);
  C.jmp(Scan);
  C.bind(EndText);
  C.addi(Reg::R12, Reg::R12, -1);
  C.cmpi(Reg::R12, 0);
  C.bgt(Outer);
  C.andi(Reg::R11, Reg::R11, 0x7FFFFFFF);
  epilogue(C, Lib);
}

/// perlbmk: string hashing into chained buckets.
void wlPerlbmk(Assembler &C, Assembler &D, GuestLibLabels &Lib,
               uint32_t Scale) {
  std::mt19937 Rng(11);
  D.align(4);
  Label Keys = D.boundLabel();
  for (int K = 0; K != 64; ++K)
    for (int I = 0; I != 8; ++I)
      D.emitU8(static_cast<uint8_t>(I < 7 ? 'a' + (Rng() % 26) : 0));
  uint32_t KeysAddr = D.labelAddr(Keys);
  Label Counts = D.boundLabel();
  D.emitZeros(64 * 4);
  uint32_t CountsAddr = D.labelAddr(Counts);

  C.movi(Reg::R11, 0);
  C.movi(Reg::R12, 250 * Scale);
  Label Outer = C.boundLabel();
  C.movi(Reg::R6, 0); // key index
  Label KeyLoop = C.boundLabel();
  C.shli(Reg::R7, Reg::R6, 3);
  C.movi(Reg::R2, KeysAddr);
  C.add(Reg::R7, Reg::R7, Reg::R2); // key ptr
  C.movi(Reg::R8, 0);               // h
  C.movi(Reg::R9, 0);               // i
  Label HashLoop = C.boundLabel();
  C.ldx(Reg::R2, Reg::R7, Reg::R9, 0, 0);
  C.andi(Reg::R2, Reg::R2, 0xFF);
  C.cmpi(Reg::R2, 0);
  Label HashDone = C.newLabel();
  C.beq(HashDone);
  C.movi(Reg::R3, 31);
  C.mul(Reg::R8, Reg::R8, Reg::R3);
  C.add(Reg::R8, Reg::R8, Reg::R2);
  C.addi(Reg::R9, Reg::R9, 1);
  C.jmp(HashLoop);
  C.bind(HashDone);
  C.andi(Reg::R8, Reg::R8, 63);
  C.movi(Reg::R2, CountsAddr);
  C.ldx(Reg::R3, Reg::R2, Reg::R8, 2, 0);
  C.addi(Reg::R3, Reg::R3, 1);
  C.stx(Reg::R2, Reg::R8, 2, 0, Reg::R3);
  C.add(Reg::R11, Reg::R11, Reg::R8);
  C.addi(Reg::R6, Reg::R6, 1);
  C.cmpi(Reg::R6, 64);
  C.blt(KeyLoop);
  C.addi(Reg::R12, Reg::R12, -1);
  C.cmpi(Reg::R12, 0);
  C.bgt(Outer);
  C.andi(Reg::R11, Reg::R11, 0x7FFFFFFF);
  epilogue(C, Lib);
}

/// vortex: open-addressing hash table insert/lookup mix (heap allocated).
void wlVortex(Assembler &C, Assembler &D, GuestLibLabels &Lib,
              uint32_t Scale) {
  const uint32_t Slots = 1024;
  C.movi(Reg::R1, Slots);
  C.movi(Reg::R2, 4);
  C.call(Lib.Calloc); // zeroed table
  C.mov(Reg::R6, Reg::R0);
  C.movi(Reg::R7, 12345); // lcg seed
  C.movi(Reg::R11, 0);
  C.movi(Reg::R12, 6000 * Scale);
  Label Loop = C.boundLabel();
  // k = lcg()
  C.movi(Reg::R2, 1103515245);
  C.mul(Reg::R7, Reg::R7, Reg::R2);
  C.addi(Reg::R7, Reg::R7, 12345);
  C.shri(Reg::R8, Reg::R7, 8);
  C.andi(Reg::R8, Reg::R8, 0xFFFF);
  C.addi(Reg::R8, Reg::R8, 1); // key != 0
  // idx = (k * 2654435761) >> 22
  C.movi(Reg::R2, 0x9E3779B1);
  C.mul(Reg::R9, Reg::R8, Reg::R2);
  C.shri(Reg::R9, Reg::R9, 22);
  C.movi(Reg::R10, 0); // probe bound: a full table must not livelock
  Label Probe = C.boundLabel();
  C.ldx(Reg::R3, Reg::R6, Reg::R9, 2, 0);
  C.cmpi(Reg::R3, 0);
  Label Insert = C.newLabel(), Done = C.newLabel();
  C.beq(Insert);
  C.cmp(Reg::R3, Reg::R8);
  Label Found = C.newLabel();
  C.beq(Found);
  C.addi(Reg::R9, Reg::R9, 1);
  C.andi(Reg::R9, Reg::R9, Slots - 1);
  C.addi(Reg::R10, Reg::R10, 1);
  C.cmpi(Reg::R10, 64);
  C.bge(Insert); // give up: overwrite the current slot
  C.jmp(Probe);
  C.bind(Insert);
  C.stx(Reg::R6, Reg::R9, 2, 0, Reg::R8);
  C.addi(Reg::R11, Reg::R11, 1);
  C.jmp(Done);
  C.bind(Found);
  C.addi(Reg::R11, Reg::R11, 3);
  C.bind(Done);
  // occasionally clear a slot to keep load factor stable
  C.andi(Reg::R2, Reg::R7, 3);
  C.cmpi(Reg::R2, 0);
  Label NoClear = C.newLabel();
  C.bne(NoClear);
  C.movi(Reg::R3, 0);
  C.stx(Reg::R6, Reg::R9, 2, 0, Reg::R3);
  C.bind(NoClear);
  C.addi(Reg::R12, Reg::R12, -1);
  C.cmpi(Reg::R12, 0);
  C.bgt(Loop);
  C.andi(Reg::R11, Reg::R11, 0x7FFFFFFF);
  epilogue(C, Lib);
}

//===----------------------------------------------------------------------===//
// Floating-point workloads
//===----------------------------------------------------------------------===//

/// Emits "allocate N doubles, fill f(i) = i * <Mult> + <Add>", returning in
/// \p Dst the base register.
void emitFpFill(Assembler &C, GuestLibLabels &Lib, Reg Dst, uint32_t N,
                double Mult, double Add) {
  C.movi(Reg::R1, N * 8);
  C.call(Lib.Malloc);
  C.mov(Dst, Reg::R0);
  C.movi(Reg::R2, 0);
  C.fmovi(FReg::F6, Mult);
  C.fmovi(FReg::F7, Add);
  Label Fill = C.boundLabel();
  C.fitod(FReg::F0, Reg::R2);
  C.fmul(FReg::F0, FReg::F0, FReg::F6);
  C.fadd(FReg::F0, FReg::F0, FReg::F7);
  C.shli(Reg::R3, Reg::R2, 3);
  C.add(Reg::R3, Reg::R3, Dst);
  C.fst(Reg::R3, 0, FReg::F0);
  C.addi(Reg::R2, Reg::R2, 1);
  C.cmpi(Reg::R2, static_cast<int32_t>(N));
  C.blt(Fill);
}

/// Common FP epilogue: checksum = (int)(f0 saturated into [0, 2^31)).
void fpEpilogue(Assembler &C, GuestLibLabels &Lib) {
  C.fdtoi(Reg::R11, FReg::F5);
  C.andi(Reg::R11, Reg::R11, 0x7FFFFFFF);
  epilogue(C, Lib);
}

/// ammp: pairwise interactions.
void wlAmmp(Assembler &C, Assembler &D, GuestLibLabels &Lib,
            uint32_t Scale) {
  const uint32_t N = 48;
  emitFpFill(C, Lib, Reg::R6, N, 0.37, 1.0);
  C.fmovi(FReg::F5, 0.0); // energy
  C.fmovi(FReg::F4, 1.0);
  C.movi(Reg::R12, 80 * Scale);
  Label Outer = C.boundLabel();
  C.movi(Reg::R7, 0); // i
  Label ILoop = C.boundLabel();
  C.shli(Reg::R2, Reg::R7, 3);
  C.add(Reg::R2, Reg::R2, Reg::R6);
  C.fld(FReg::F0, Reg::R2, 0); // x[i]
  C.movi(Reg::R8, 0);          // j
  Label JLoop = C.boundLabel();
  C.shli(Reg::R2, Reg::R8, 3);
  C.add(Reg::R2, Reg::R2, Reg::R6);
  C.fld(FReg::F1, Reg::R2, 0); // x[j]
  C.fsub(FReg::F2, FReg::F0, FReg::F1);
  C.fmul(FReg::F3, FReg::F2, FReg::F2);
  C.fadd(FReg::F3, FReg::F3, FReg::F4); // dx^2 + 1
  C.fdiv(FReg::F3, FReg::F4, FReg::F3); // 1 / (dx^2 + 1)
  C.fadd(FReg::F5, FReg::F5, FReg::F3);
  C.addi(Reg::R8, Reg::R8, 1);
  C.cmpi(Reg::R8, N);
  C.blt(JLoop);
  C.addi(Reg::R7, Reg::R7, 1);
  C.cmpi(Reg::R7, N);
  C.blt(ILoop);
  C.addi(Reg::R12, Reg::R12, -1);
  C.cmpi(Reg::R12, 0);
  C.bgt(Outer);
  fpEpilogue(C, Lib);
}

/// applu: Jacobi sweeps over a 2D grid.
void wlApplu(Assembler &C, Assembler &D, GuestLibLabels &Lib,
             uint32_t Scale) {
  const uint32_t W = 64, H = 48;
  emitFpFill(C, Lib, Reg::R6, W * H, 0.001, 0.0);
  C.fmovi(FReg::F6, 0.25);
  C.movi(Reg::R12, 10 * Scale);
  Label Sweep = C.boundLabel();
  C.movi(Reg::R7, 1); // y
  Label YLoop = C.boundLabel();
  C.movi(Reg::R8, 1); // x
  Label XLoop = C.boundLabel();
  // addr = base + (y*W + x)*8
  C.movi(Reg::R2, W);
  C.mul(Reg::R3, Reg::R7, Reg::R2);
  C.add(Reg::R3, Reg::R3, Reg::R8);
  C.shli(Reg::R3, Reg::R3, 3);
  C.add(Reg::R3, Reg::R3, Reg::R6);
  C.fld(FReg::F0, Reg::R3, -8);
  C.fld(FReg::F1, Reg::R3, 8);
  C.fld(FReg::F2, Reg::R3, -8 * static_cast<int16_t>(W));
  C.fld(FReg::F3, Reg::R3, 8 * static_cast<int16_t>(W));
  C.fadd(FReg::F0, FReg::F0, FReg::F1);
  C.fadd(FReg::F2, FReg::F2, FReg::F3);
  C.fadd(FReg::F0, FReg::F0, FReg::F2);
  C.fmul(FReg::F0, FReg::F0, FReg::F6);
  C.fst(Reg::R3, 0, FReg::F0);
  C.addi(Reg::R8, Reg::R8, 1);
  C.cmpi(Reg::R8, W - 1);
  C.blt(XLoop);
  C.addi(Reg::R7, Reg::R7, 1);
  C.cmpi(Reg::R7, H - 1);
  C.blt(YLoop);
  C.addi(Reg::R12, Reg::R12, -1);
  C.cmpi(Reg::R12, 0);
  C.bgt(Sweep);
  // checksum: centre value * 1e6
  C.movi(Reg::R2, (W * (H / 2) + W / 2) * 8);
  C.add(Reg::R2, Reg::R2, Reg::R6);
  C.fld(FReg::F5, Reg::R2, 0);
  C.fmovi(FReg::F0, 1e6);
  C.fmul(FReg::F5, FReg::F5, FReg::F0);
  fpEpilogue(C, Lib);
}

/// art: dot products + winner-take-all.
void wlArt(Assembler &C, Assembler &D, GuestLibLabels &Lib, uint32_t Scale) {
  const uint32_t N = 256;
  emitFpFill(C, Lib, Reg::R6, N, 0.003, 0.1); // input
  emitFpFill(C, Lib, Reg::R7, N, -0.002, 0.5); // weights
  C.fmovi(FReg::F5, 0.0);
  C.movi(Reg::R12, 250 * Scale);
  Label Outer = C.boundLabel();
  C.fmovi(FReg::F2, 0.0); // dot
  C.movi(Reg::R8, 0);
  Label Dot = C.boundLabel();
  C.shli(Reg::R2, Reg::R8, 3);
  C.add(Reg::R3, Reg::R2, Reg::R6);
  C.add(Reg::R4, Reg::R2, Reg::R7);
  C.fld(FReg::F0, Reg::R3, 0);
  C.fld(FReg::F1, Reg::R4, 0);
  C.fmul(FReg::F0, FReg::F0, FReg::F1);
  C.fadd(FReg::F2, FReg::F2, FReg::F0);
  C.addi(Reg::R8, Reg::R8, 1);
  C.cmpi(Reg::R8, N);
  C.blt(Dot);
  // winner-take-all-ish: F5 = max(F5 * 0.999, dot)
  C.fmovi(FReg::F3, 0.999);
  C.fmul(FReg::F5, FReg::F5, FReg::F3);
  C.fcmp(FReg::F2, FReg::F5);
  Label NoMax = C.newLabel();
  C.ble(NoMax);
  C.fmov(FReg::F5, FReg::F2);
  C.bind(NoMax);
  C.addi(Reg::R12, Reg::R12, -1);
  C.cmpi(Reg::R12, 0);
  C.bgt(Outer);
  C.fmovi(FReg::F0, 1000.0);
  C.fmul(FReg::F5, FReg::F5, FReg::F0);
  fpEpilogue(C, Lib);
}

/// equake: 1D wave-equation stencil.
void wlEquake(Assembler &C, Assembler &D, GuestLibLabels &Lib,
              uint32_t Scale) {
  const uint32_t N = 512;
  emitFpFill(C, Lib, Reg::R6, N, 0.01, 0.0);  // u
  emitFpFill(C, Lib, Reg::R7, N, 0.01, 0.0);  // u_prev
  C.fmovi(FReg::F6, 0.25); // c
  C.fmovi(FReg::F7, 2.0);
  C.movi(Reg::R12, 300 * Scale);
  Label Step = C.boundLabel();
  C.movi(Reg::R8, 1);
  Label ILoop = C.boundLabel();
  C.shli(Reg::R2, Reg::R8, 3);
  C.add(Reg::R3, Reg::R2, Reg::R6); // &u[i]
  C.add(Reg::R4, Reg::R2, Reg::R7); // &up[i]
  C.fld(FReg::F0, Reg::R3, 0);
  C.fld(FReg::F1, Reg::R3, -8);
  C.fld(FReg::F2, Reg::R3, 8);
  C.fld(FReg::F3, Reg::R4, 0);
  // unew = 2u - up + c*(u[-1] - 2u + u[+1])
  C.fmul(FReg::F4, FReg::F0, FReg::F7);
  C.fsub(FReg::F4, FReg::F4, FReg::F3);
  C.fadd(FReg::F1, FReg::F1, FReg::F2);
  C.fsub(FReg::F1, FReg::F1, FReg::F0);
  C.fsub(FReg::F1, FReg::F1, FReg::F0);
  C.fmul(FReg::F1, FReg::F1, FReg::F6);
  C.fadd(FReg::F4, FReg::F4, FReg::F1);
  C.fst(Reg::R4, 0, FReg::F4); // up[i] = unew (double-buffer swap by role)
  C.addi(Reg::R8, Reg::R8, 1);
  C.cmpi(Reg::R8, N - 1);
  C.blt(ILoop);
  // swap u and up
  C.mov(Reg::R2, Reg::R6);
  C.mov(Reg::R6, Reg::R7);
  C.mov(Reg::R7, Reg::R2);
  C.addi(Reg::R12, Reg::R12, -1);
  C.cmpi(Reg::R12, 0);
  C.bgt(Step);
  C.fld(FReg::F5, Reg::R6, 8 * 100);
  C.fmovi(FReg::F0, 1e4);
  C.fmul(FReg::F5, FReg::F5, FReg::F0);
  fpEpilogue(C, Lib);
}

/// mesa: vertex transform with conversions.
void wlMesa(Assembler &C, Assembler &D, GuestLibLabels &Lib,
            uint32_t Scale) {
  const uint32_t N = 256;
  emitFpFill(C, Lib, Reg::R6, N * 2, 0.005, -0.4); // x,y interleaved
  C.movi(Reg::R11, 0);
  C.fmovi(FReg::F6, 0.7071);  // cos
  C.fmovi(FReg::F7, -0.7071); // -sin
  C.movi(Reg::R12, 300 * Scale);
  Label Outer = C.boundLabel();
  C.movi(Reg::R7, 0);
  Label VLoop = C.boundLabel();
  C.shli(Reg::R2, Reg::R7, 4); // 16 bytes per vertex
  C.add(Reg::R2, Reg::R2, Reg::R6);
  C.fld(FReg::F0, Reg::R2, 0);
  C.fld(FReg::F1, Reg::R2, 8);
  // rotate
  C.fmul(FReg::F2, FReg::F0, FReg::F6);
  C.fmul(FReg::F3, FReg::F1, FReg::F7);
  C.fadd(FReg::F2, FReg::F2, FReg::F3); // x'
  C.fmul(FReg::F3, FReg::F0, FReg::F7);
  C.fmul(FReg::F4, FReg::F1, FReg::F6);
  C.fsub(FReg::F3, FReg::F4, FReg::F3); // y'
  C.fst(Reg::R2, 0, FReg::F2);
  C.fst(Reg::R2, 8, FReg::F3);
  // fixed-point rasterise-ish step
  C.fmovi(FReg::F4, 256.0);
  C.fmul(FReg::F2, FReg::F2, FReg::F4);
  C.fdtoi(Reg::R3, FReg::F2);
  C.add(Reg::R11, Reg::R11, Reg::R3);
  C.addi(Reg::R7, Reg::R7, 1);
  C.cmpi(Reg::R7, N);
  C.blt(VLoop);
  C.addi(Reg::R12, Reg::R12, -1);
  C.cmpi(Reg::R12, 0);
  C.bgt(Outer);
  C.andi(Reg::R11, Reg::R11, 0x7FFFFFFF);
  epilogue(C, Lib);
}

/// swim: elementwise triple-array updates.
void wlSwim(Assembler &C, Assembler &D, GuestLibLabels &Lib,
            uint32_t Scale) {
  const uint32_t N = 1024;
  emitFpFill(C, Lib, Reg::R6, N, 0.002, 0.3); // a
  emitFpFill(C, Lib, Reg::R7, N, -0.001, 0.9); // b
  emitFpFill(C, Lib, Reg::R8, N, 0.004, -0.2); // c
  C.fmovi(FReg::F6, 0.5);
  C.fmovi(FReg::F7, 0.25);
  C.movi(Reg::R12, 150 * Scale);
  Label Sweep = C.boundLabel();
  C.movi(Reg::R9, 0);
  Label ILoop = C.boundLabel();
  C.shli(Reg::R2, Reg::R9, 3);
  C.add(Reg::R3, Reg::R2, Reg::R6);
  C.add(Reg::R4, Reg::R2, Reg::R7);
  C.add(Reg::R5, Reg::R2, Reg::R8);
  C.fld(FReg::F0, Reg::R4, 0);
  C.fld(FReg::F1, Reg::R5, 0);
  C.fmul(FReg::F0, FReg::F0, FReg::F6);
  C.fmul(FReg::F1, FReg::F1, FReg::F7);
  C.fadd(FReg::F0, FReg::F0, FReg::F1);
  C.fst(Reg::R3, 0, FReg::F0); // a = b*0.5 + c*0.25
  C.fld(FReg::F2, Reg::R3, 0);
  C.fsub(FReg::F2, FReg::F2, FReg::F1);
  C.fst(Reg::R4, 0, FReg::F2); // b = a - c*0.25
  C.addi(Reg::R9, Reg::R9, 1);
  C.cmpi(Reg::R9, N);
  C.blt(ILoop);
  C.addi(Reg::R12, Reg::R12, -1);
  C.cmpi(Reg::R12, 0);
  C.bgt(Sweep);
  C.fld(FReg::F5, Reg::R6, 8 * 17);
  C.fmovi(FReg::F0, 1e5);
  C.fmul(FReg::F5, FReg::F5, FReg::F0);
  fpEpilogue(C, Lib);
}

//===----------------------------------------------------------------------===//
// Scheduler/signal soak workload (not part of the Table 2 set)
//===----------------------------------------------------------------------===//

/// sigmt: two cloned children storm each other and the main thread with
/// SIGUSR1/SIGUSR2 while interleaving compute, yields, nanosleeps and the
/// occasional write. Every fallible syscall either retries on SysErr
/// (sigaction/mmap/clone are load-bearing) or ignores failure (kill), so
/// the program exits 0 under any --fault-inject plan. Built by name only;
/// deliberately absent from allWorkloads() so it never perturbs the
/// Table 2 benchmark set.
void wlSigMt(Assembler &C, Assembler &D, GuestLibLabels &Lib,
             uint32_t Scale) {
  Label Handler1 = C.newLabel();
  Label Handler2 = C.newLabel();
  Label Child = C.newLabel();
  Label Over = C.newLabel();

  Label HC1 = D.boundLabel();
  D.emitZeros(4); // SIGUSR1 deliveries (all threads)
  Label HC2 = D.boundLabel();
  D.emitZeros(4); // SIGUSR2 deliveries (all threads)
  Label Done = D.boundLabel();
  D.emitZeros(8); // per-child done flags
  Label Sums = D.boundLabel();
  D.emitZeros(8); // per-child hash results
  Label Tids = D.boundLabel();
  D.emitZeros(8); // child tids, written before Go
  Label Go = D.boundLabel();
  D.emitZeros(4); // children may start
  uint32_t HC1A = D.labelAddr(HC1), HC2A = D.labelAddr(HC2);
  uint32_t DoneA = D.labelAddr(Done), SumsA = D.labelAddr(Sums);
  uint32_t TidsA = D.labelAddr(Tids), GoA = D.labelAddr(Go);
  uint32_t Iters = 48 * Scale;

  // Install both handlers; injection can fail sigaction, so retry.
  auto installHandler = [&](int Sig, Label H) {
    Label Retry = C.boundLabel();
    C.movi(Reg::R0, SysSigaction);
    C.movi(Reg::R1, static_cast<uint32_t>(Sig));
    C.leai(Reg::R2, H);
    C.sys();
    C.cmpi(Reg::R0, -1);
    C.beq(Retry);
  };
  installHandler(SigUSR1, Handler1);
  installHandler(SigUSR2, Handler2);

  // Spawn two children: mmap a stack then clone, both with retry loops.
  for (uint32_t Idx = 0; Idx != 2; ++Idx) {
    Label MapRetry = C.boundLabel();
    C.movi(Reg::R0, SysMmap);
    C.movi(Reg::R1, 0);
    C.movi(Reg::R2, 65536);
    C.movi(Reg::R3, 3);
    C.movi(Reg::R4, 0);
    C.sys();
    C.cmpi(Reg::R0, -1);
    C.beq(MapRetry);
    C.addi(Reg::R9, Reg::R0, 65536); // child SP = top of mapping
    Label CloneRetry = C.boundLabel();
    C.movi(Reg::R0, SysClone);
    C.leai(Reg::R1, Child);
    C.mov(Reg::R2, Reg::R9);
    C.movi(Reg::R3, Idx); // child arg = its index
    C.sys();
    C.cmpi(Reg::R0, -1);
    C.beq(CloneRetry);
    C.movi(Reg::R3, TidsA);
    C.st(Reg::R3, static_cast<int16_t>(4 * Idx), Reg::R0);
  }
  // Release the children only once both tids are published.
  C.movi(Reg::R2, 1);
  C.movi(Reg::R3, GoA);
  C.st(Reg::R3, 0, Reg::R2);

  // Main joins the storm: signal both children while they run.
  C.movi(Reg::R7, 0);
  {
    Label MLoop = C.boundLabel();
    C.movi(Reg::R3, TidsA);
    C.ld(Reg::R1, Reg::R3, 0);
    C.movi(Reg::R0, SysKill);
    C.movi(Reg::R2, SigUSR1);
    C.sys(); // failure/late-exit tolerated
    C.movi(Reg::R3, TidsA);
    C.ld(Reg::R1, Reg::R3, 4);
    C.movi(Reg::R0, SysKill);
    C.movi(Reg::R2, SigUSR2);
    C.sys();
    C.movi(Reg::R0, SysYield);
    C.sys();
    C.addi(Reg::R7, Reg::R7, 1);
    C.cmpi(Reg::R7, 16 * Scale);
    C.blt(MLoop);
  }

  // Wait for both children, yielding; spurious wakeups just re-loop.
  {
    Label Wait = C.boundLabel();
    C.movi(Reg::R0, SysYield);
    C.sys();
    C.movi(Reg::R3, DoneA);
    C.ld(Reg::R2, Reg::R3, 0);
    C.ld(Reg::R4, Reg::R3, 4);
    C.add(Reg::R2, Reg::R2, Reg::R4);
    C.cmpi(Reg::R2, 2);
    C.bne(Wait);
  }

  // Checksum only the compute results: they are signal-independent, so
  // stdout is stable across fault plans (modulo short writes).
  C.movi(Reg::R3, SumsA);
  C.ld(Reg::R11, Reg::R3, 0);
  C.ld(Reg::R4, Reg::R3, 4);
  C.movi(Reg::R5, 5);
  C.mul(Reg::R4, Reg::R4, Reg::R5);
  C.xor_(Reg::R11, Reg::R11, Reg::R4);
  C.jmp(Over);

  // handler(USR1): ++HC1. Leaf; sigreturn restores any clobbers.
  C.bind(Handler1);
  C.movi(Reg::R3, HC1A);
  C.ld(Reg::R4, Reg::R3, 0);
  C.addi(Reg::R4, Reg::R4, 1);
  C.st(Reg::R3, 0, Reg::R4);
  C.ret();

  // handler(USR2): ++HC2.
  C.bind(Handler2);
  C.movi(Reg::R3, HC2A);
  C.ld(Reg::R4, Reg::R3, 0);
  C.addi(Reg::R4, Reg::R4, 1);
  C.st(Reg::R3, 0, Reg::R4);
  C.ret();

  // child(idx in r1): wait for Go, then hash-mix while signalling the
  // sibling and main; finish by publishing the hash and a done flag.
  C.bind(Child);
  C.mov(Reg::R6, Reg::R1); // idx
  {
    Label Spin = C.boundLabel();
    C.movi(Reg::R0, SysYield);
    C.sys();
    C.movi(Reg::R3, GoA);
    C.ld(Reg::R2, Reg::R3, 0);
    C.cmpi(Reg::R2, 0);
    C.beq(Spin);
  }
  C.movi(Reg::R7, 0);                 // i
  C.movi(Reg::R8, 0x9E37);            // hash
  C.add(Reg::R8, Reg::R8, Reg::R6);
  {
    Label CLoop = C.boundLabel();
    C.movi(Reg::R2, 33);
    C.mul(Reg::R8, Reg::R8, Reg::R2);
    C.xor_(Reg::R8, Reg::R8, Reg::R7);
    // kill(main, USR1) -- ignore failures.
    C.movi(Reg::R0, SysKill);
    C.movi(Reg::R1, 0);
    C.movi(Reg::R2, SigUSR1);
    C.sys();
    // kill(sibling, USR2) -- sibling may already have exited.
    C.movi(Reg::R2, 1);
    C.sub(Reg::R2, Reg::R2, Reg::R6);
    C.movi(Reg::R4, TidsA);
    C.ldx(Reg::R1, Reg::R4, Reg::R2, 2, 0);
    C.movi(Reg::R0, SysKill);
    C.movi(Reg::R2, SigUSR2);
    C.sys();
    // every 4th iteration: yield; every 16th: nanosleep(30us).
    Label NoYield = C.newLabel();
    C.andi(Reg::R2, Reg::R7, 3);
    C.cmpi(Reg::R2, 0);
    C.bne(NoYield);
    C.movi(Reg::R0, SysYield);
    C.sys();
    C.bind(NoYield);
    Label NoSleep = C.newLabel();
    C.andi(Reg::R2, Reg::R7, 15);
    C.cmpi(Reg::R2, 0);
    C.bne(NoSleep);
    C.movi(Reg::R0, SysNanosleep);
    C.movi(Reg::R1, 30);
    C.sys();
    C.bind(NoSleep);
    C.addi(Reg::R7, Reg::R7, 1);
    C.cmpi(Reg::R7, Iters);
    C.blt(CLoop);
  }
  C.movi(Reg::R3, SumsA);
  C.stx(Reg::R3, Reg::R6, 2, 0, Reg::R8);
  C.movi(Reg::R2, 1);
  C.movi(Reg::R3, DoneA);
  C.stx(Reg::R3, Reg::R6, 2, 0, Reg::R2);
  C.movi(Reg::R0, SysExitThread);
  C.movi(Reg::R1, 0);
  C.sys();

  C.bind(Over);
  epilogue(C, Lib);
}

/// mtcpu: four cloned children, each hash-mixing over its own private
/// mmap'd buffer — CPU-bound, no shared writable data beyond the go/done
/// handshake, and each child's sum is deterministic regardless of how the
/// threads interleave. The parallel-scheduler scaling bench runs this at
/// --sched-threads=1 vs 4; the concurrency tests hammer it for divergence.
void wlMtCpu(Assembler &C, Assembler &D, GuestLibLabels &Lib,
             uint32_t Scale) {
  constexpr uint32_t NumChildren = 4;
  Label ChildFn = C.newLabel();
  Label Over = C.newLabel();

  Label Done = D.boundLabel();
  D.emitZeros(4 * NumChildren); // per-child done flags
  Label Sums = D.boundLabel();
  D.emitZeros(4 * NumChildren); // per-child hash results
  Label Go = D.boundLabel();
  D.emitZeros(4); // children may start
  uint32_t DoneA = D.labelAddr(Done), SumsA = D.labelAddr(Sums);
  uint32_t GoA = D.labelAddr(Go);
  uint32_t Iters = 4096 * Scale;

  // Spawn the children: mmap a stack then clone, both with retry loops
  // (fault injection can fail either).
  for (uint32_t Idx = 0; Idx != NumChildren; ++Idx) {
    Label MapRetry = C.boundLabel();
    C.movi(Reg::R0, SysMmap);
    C.movi(Reg::R1, 0);
    C.movi(Reg::R2, 65536);
    C.movi(Reg::R3, 3);
    C.movi(Reg::R4, 0);
    C.sys();
    C.cmpi(Reg::R0, -1);
    C.beq(MapRetry);
    C.addi(Reg::R9, Reg::R0, 65536); // child SP = top of mapping
    Label CloneRetry = C.boundLabel();
    C.movi(Reg::R0, SysClone);
    C.leai(Reg::R1, ChildFn);
    C.mov(Reg::R2, Reg::R9);
    C.movi(Reg::R3, Idx); // child arg = its index
    C.sys();
    C.cmpi(Reg::R0, -1);
    C.beq(CloneRetry);
  }
  C.movi(Reg::R2, 1);
  C.movi(Reg::R3, GoA);
  C.st(Reg::R3, 0, Reg::R2);

  // Wait for all children, yielding between polls.
  {
    Label Wait = C.boundLabel();
    C.movi(Reg::R0, SysYield);
    C.sys();
    C.movi(Reg::R3, DoneA);
    C.ld(Reg::R2, Reg::R3, 0);
    C.ld(Reg::R4, Reg::R3, 4);
    C.add(Reg::R2, Reg::R2, Reg::R4);
    C.ld(Reg::R4, Reg::R3, 8);
    C.add(Reg::R2, Reg::R2, Reg::R4);
    C.ld(Reg::R4, Reg::R3, 12);
    C.add(Reg::R2, Reg::R2, Reg::R4);
    C.cmpi(Reg::R2, NumChildren);
    C.bne(Wait);
  }

  // checksum: fold the four sums with distinct odd multipliers so a swap
  // of two children's results cannot cancel out.
  C.movi(Reg::R3, SumsA);
  C.ld(Reg::R11, Reg::R3, 0);
  static const uint32_t Mults[] = {5, 9, 13};
  for (uint32_t I = 0; I != 3; ++I) {
    C.ld(Reg::R4, Reg::R3, static_cast<int16_t>(4 * (I + 1)));
    C.movi(Reg::R5, Mults[I]);
    C.mul(Reg::R4, Reg::R4, Reg::R5);
    C.xor_(Reg::R11, Reg::R11, Reg::R4);
  }
  C.jmp(Over);

  // child(idx in r1): mmap a private scratch buffer, wait for go, then a
  // store/load/hash loop with no syscalls — pure compute.
  C.bind(ChildFn);
  C.mov(Reg::R6, Reg::R1); // idx
  {
    Label BufRetry = C.boundLabel();
    C.movi(Reg::R0, SysMmap);
    C.movi(Reg::R1, 0);
    C.movi(Reg::R2, 65536);
    C.movi(Reg::R3, 3);
    C.movi(Reg::R4, 0);
    C.sys();
    C.cmpi(Reg::R0, -1);
    C.beq(BufRetry);
    C.mov(Reg::R9, Reg::R0); // buffer base
  }
  {
    Label Spin = C.boundLabel();
    C.movi(Reg::R0, SysYield);
    C.sys();
    C.movi(Reg::R3, GoA);
    C.ld(Reg::R2, Reg::R3, 0);
    C.cmpi(Reg::R2, 0);
    C.beq(Spin);
  }
  C.movi(Reg::R7, 0);      // i
  C.movi(Reg::R8, 0x9E37); // hash
  C.add(Reg::R8, Reg::R8, Reg::R6);
  {
    Label CLoop = C.boundLabel();
    C.movi(Reg::R2, 33);
    C.mul(Reg::R8, Reg::R8, Reg::R2);
    C.xor_(Reg::R8, Reg::R8, Reg::R7);
    // buf[i & 0x3FFF] = hash (word-indexed; 4 * 0x3FFF < 64KB).
    C.andi(Reg::R2, Reg::R7, 0x3FFF);
    C.stx(Reg::R9, Reg::R2, 2, 0, Reg::R8);
    // hash ^= buf[(7i + 1) & 0x3FFF] — a different, older slot (zero
    // until the buffer wraps), so loads feed the hash too.
    C.movi(Reg::R4, 7);
    C.mul(Reg::R4, Reg::R7, Reg::R4);
    C.addi(Reg::R4, Reg::R4, 1);
    C.andi(Reg::R4, Reg::R4, 0x3FFF);
    C.ldx(Reg::R5, Reg::R9, Reg::R4, 2, 0);
    C.xor_(Reg::R8, Reg::R8, Reg::R5);
    C.addi(Reg::R7, Reg::R7, 1);
    C.cmpi(Reg::R7, Iters);
    C.blt(CLoop);
  }
  C.movi(Reg::R3, SumsA);
  C.stx(Reg::R3, Reg::R6, 2, 0, Reg::R8);
  C.movi(Reg::R2, 1);
  C.movi(Reg::R3, DoneA);
  C.stx(Reg::R3, Reg::R6, 2, 0, Reg::R2);
  C.movi(Reg::R0, SysExitThread);
  C.movi(Reg::R1, 0);
  C.sys();

  C.bind(Over);
  epilogue(C, Lib);
}

} // namespace

const std::vector<WorkloadInfo> &vg::allWorkloads() {
  static const std::vector<WorkloadInfo> W = {
      {"bzip2", false},  {"crafty", false}, {"gcc", false},
      {"gzip", false},   {"mcf", false},    {"parser", false},
      {"perlbmk", false}, {"vortex", false}, {"ammp", true},
      {"applu", true},   {"art", true},     {"equake", true},
      {"mesa", true},    {"swim", true},
  };
  return W;
}

GuestImage vg::buildWorkload(const std::string &Name, uint32_t Scale) {
  if (Scale == 0)
    Scale = 1;
  if (Name == "bzip2")
    return build(wlBzip2, Scale);
  if (Name == "crafty")
    return build(wlCrafty, Scale);
  if (Name == "gcc")
    return build(wlGcc, Scale);
  if (Name == "gzip")
    return build(wlGzip, Scale);
  if (Name == "mcf")
    return build(wlMcf, Scale);
  if (Name == "parser")
    return build(wlParser, Scale);
  if (Name == "perlbmk")
    return build(wlPerlbmk, Scale);
  if (Name == "vortex")
    return build(wlVortex, Scale);
  if (Name == "ammp")
    return build(wlAmmp, Scale);
  if (Name == "applu")
    return build(wlApplu, Scale);
  if (Name == "art")
    return build(wlArt, Scale);
  if (Name == "equake")
    return build(wlEquake, Scale);
  if (Name == "mesa")
    return build(wlMesa, Scale);
  if (Name == "swim")
    return build(wlSwim, Scale);
  if (Name == "sigmt")
    return build(wlSigMt, Scale);
  if (Name == "mtcpu")
    return build(wlMtCpu, Scale);
  fatalError(("unknown workload: " + Name).c_str());
}
