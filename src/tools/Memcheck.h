//===-- tools/Memcheck.h - The definedness checker --------------*- C++ -*-==//
///
/// \file
/// Memcheck reproduced: tracks which bit values are undefined
/// (uninitialised or derived from undefined values) and which byte
/// addresses are accessible, and reports dangerous uses:
///
///   UninitValue      an undefined value used as a load/store address
///   UninitCondition  a conditional branch depending on undefined bits
///   UninitJumpTarget an indirect jump to an undefined address
///   UninitSyscall    a syscall reading undefined registers or memory
///   InvalidRead/Write  access to unaddressable memory (heap red zones,
///                      freed blocks, below-stack, unmapped)
///   InvalidFree      free() of a non-heap pointer (or double free)
///   Leak             blocks still reachable from nowhere at exit
///
/// Mechanically it is the paper's Figure 2 instrumentation: every value
/// carries shadow V-bits (one per bit, stored one shadow byte per byte);
/// shadow registers live in the ThreadState at gso::ShadowOffset (R1);
/// shadow memory is the two-level ShadowMap (R2); every load/store is
/// instrumented (R3); syscall accesses are checked through the events
/// system (R4); allocations come from Table 1 events (R5-R7); heap
/// tracking uses the redirected allocator with red zones (R8); reports go
/// through the core's output sink and error manager (R9).
///
/// Propagation policy (documented approximations of Memcheck's exact
/// rules):
///   and/or/xor           UifU      (OR of operand V-bits)
///   add/sub/mul          Left(UifU)  — Or(x, Neg(x)) upward smear
///   shifts by constants  same shift of the V-bits
///   comparisons, FP ops, calls, widening muls: PCast (any undefined bit
///   poisons the whole result)
///   conversions          the same conversion applied to V-bits
///
//===----------------------------------------------------------------------===//
#ifndef VG_TOOLS_MEMCHECK_H
#define VG_TOOLS_MEMCHECK_H

#include "core/ClientRequests.h"
#include "core/Core.h"
#include "core/Tool.h"
#include "shadow/ShadowMemory.h"

#include <atomic>

namespace vg {

/// Memcheck's client-request namespace tag.
constexpr uint32_t McTag = vgToolTag('M', 'C');

/// Memcheck's client requests ('M','C' namespace).
enum MemcheckRequest : uint32_t {
  McMakeMemDefined = vgRequest(McTag, 1),   ///< (addr, len)
  McMakeMemUndefined = vgRequest(McTag, 2), ///< (addr, len)
  McMakeMemNoAccess = vgRequest(McTag, 3),  ///< (addr, len)
  McCheckMemIsDefined = vgRequest(McTag, 4), ///< (addr, len) -> 0 ok/first bad
  McCheckMemIsAddressable = vgRequest(McTag, 5),
  McCountErrors = vgRequest(McTag, 6), ///< () -> unique error count
};

/// Pre-namespacing flat codes (CrToolBase+N). Old guest binaries still
/// issue these; handleClientRequest keeps alias cases for them.
enum LegacyMemcheckRequest : uint32_t {
  McLegacyMakeMemDefined = CrToolBase + 1,
  McLegacyMakeMemUndefined = CrToolBase + 2,
  McLegacyMakeMemNoAccess = CrToolBase + 3,
  McLegacyCheckMemIsDefined = CrToolBase + 4,
  McLegacyCheckMemIsAddressable = CrToolBase + 5,
  McLegacyCountErrors = CrToolBase + 6,
};

class Memcheck : public Tool {
public:
  Memcheck() = default;

  const char *name() const override { return "memcheck"; }
  void registerOptions(OptionRegistry &Opts) override;
  void init(Core &C) override;
  void instrument(ir::IRSB &SB) override;
  void fini(int ExitCode) override;
  bool handleClientRequest(int Tid, uint32_t Code, const uint32_t Args[4],
                           uint32_t &Result) override;
  /// The V/A state lives in the MT-safe ShadowMap, the helper-side
  /// counters below are atomic, and error recording is serialised inside
  /// the ErrorManager, so concurrent guest threads are supported. Shadow
  /// bit granularity caveat: A-bits pack 8 guest bytes per shadow byte, so
  /// two threads flipping addressability of *adjacent* bytes in the same
  /// 8-byte group race on the A-byte. The replacement allocator hands out
  /// 16-byte-aligned blocks, which keeps distinct heap blocks in distinct
  /// groups; guests that carve one block across threads must align their
  /// sub-allocations just as they must under real memcheck --partial-ok.
  bool supportsParallelGuests() const override { return true; }

  // Heap replacement (R8).
  bool tracksHeap() const override { return true; }
  uint32_t redzoneBytes() const override { return 16; }
  void onMalloc(int Tid, uint32_t Addr, uint32_t Size, bool Zeroed) override;
  void onFree(int Tid, uint32_t Addr, uint32_t Size) override;
  void onBadFree(int Tid, uint32_t Addr) override;

  ShadowMap *shadowMap() override { return &SM; }
  ShadowMap &shadow() { return SM; }
  uint64_t uniqueErrors() const;

  // --- helpers called from generated code (public: bound into Callee
  //     descriptors at namespace scope) ----------------------------------
  static uint64_t helperLoadV(void *Env, uint64_t Addr, uint64_t Size,
                              uint64_t PC, uint64_t);
  static uint64_t helperStoreV(void *Env, uint64_t Addr, uint64_t Vbits,
                               uint64_t SizePC, uint64_t);
  static uint64_t helperValueCheckFail(void *Env, uint64_t PC, uint64_t Size,
                                       uint64_t, uint64_t);
  static uint64_t helperCondUndef(void *Env, uint64_t PC, uint64_t,
                                  uint64_t, uint64_t);
  static uint64_t helperJumpUndef(void *Env, uint64_t PC, uint64_t, uint64_t,
                                  uint64_t);

private:
  /// Records (and on first sight prints) an error. \p Tid attributes the
  /// stack trace; -1 means "the scheduler's current thread", which is only
  /// meaningful on the serialised scheduler — parallel callers must pass
  /// the tid from their ExecContext or event argument.
  void reportError(const char *Kind, const std::string &Msg, uint32_t PC,
                   int Tid = -1);
  void checkDefinedRange(int Tid, uint32_t Addr, uint32_t Len,
                         const char *What);
  void leakCheck();

  Core *C = nullptr;
  ShadowMap SM;
  bool LeakCheckEnabled = true;

  // Statistics for the summary line. Atomic (relaxed): the helpers run
  // lock-free inside Exec.run, concurrently across shards under
  // --sched-threads=N and racing the guest thread under --jit-threads=N.
  std::atomic<uint64_t> ShadowLoads{0}, ShadowStores{0};
};

} // namespace vg

#endif // VG_TOOLS_MEMCHECK_H
