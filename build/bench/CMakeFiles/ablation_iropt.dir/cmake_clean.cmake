file(REMOVE_RECURSE
  "CMakeFiles/ablation_iropt.dir/ablation_iropt.cpp.o"
  "CMakeFiles/ablation_iropt.dir/ablation_iropt.cpp.o.d"
  "ablation_iropt"
  "ablation_iropt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_iropt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
