# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_guest "/root/repo/build/tests/test_guest")
set_tests_properties(test_guest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;vg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ir "/root/repo/build/tests/test_ir")
set_tests_properties(test_ir PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;vg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_jit "/root/repo/build/tests/test_jit")
set_tests_properties(test_jit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;vg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;vg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_transtab "/root/repo/build/tests/test_transtab")
set_tests_properties(test_transtab PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;vg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_memcheck "/root/repo/build/tests/test_memcheck")
set_tests_properties(test_memcheck PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;vg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workloads "/root/repo/build/tests/test_workloads")
set_tests_properties(test_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;vg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tools "/root/repo/build/tests/test_tools")
set_tests_properties(test_tools PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;vg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_kernel "/root/repo/build/tests/test_kernel")
set_tests_properties(test_kernel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;vg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hvm "/root/repo/build/tests/test_hvm")
set_tests_properties(test_hvm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;vg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;vg_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_support "/root/repo/build/tests/test_support")
set_tests_properties(test_support PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;vg_test;/root/repo/tests/CMakeLists.txt;0;")
