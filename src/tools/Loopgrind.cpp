//===-- tools/Loopgrind.cpp - The loop/CFG profiler -----------------------==//

#include "tools/Loopgrind.h"

#include "core/TransTab.h"
#include "hvm/ExecContext.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace vg;
using namespace vg::ir;

uint64_t Loopgrind::helperBlockEntry(void *Env, uint64_t Addr, uint64_t,
                                     uint64_t, uint64_t) {
  auto *Ctx = static_cast<ExecContext *>(Env);
  static_cast<Loopgrind *>(Ctx->Tool)
      ->noteBlock(Ctx->Tid, static_cast<uint32_t>(Addr));
  return 0;
}

namespace {
const Callee EntryCallee = {"loopgrind_entry", &Loopgrind::helperBlockEntry,
                            0};
const ir::CalleeRegistrar RegisterCallees{&EntryCallee};
} // namespace

void Loopgrind::registerOptions(OptionRegistry &Opts) {
  Opts.addOption("loop-top", "5", "loops to list in the report");
}

void Loopgrind::init(Core &Core_) {
  C = &Core_;
  TopN = static_cast<unsigned>(
      C->options().getIntChecked("loop-top", 1, 1000));
}

void Loopgrind::instrument(IRSB &SB) {
  // The block's entry address is its first IMark; the dirty call goes
  // right after it so the helper fires exactly once per block entry,
  // before any guest work.
  std::vector<Stmt *> Old;
  Old.swap(SB.stmts());
  bool Planted = false;
  for (Stmt *S : Old) {
    SB.append(S);
    if (!Planted && S->Kind == StmtKind::IMark) {
      SB.dirty(&EntryCallee, {SB.constI64(S->IAddr)});
      Planted = true;
    }
  }
}

void Loopgrind::noteBlock(int Tid, uint32_t Addr) {
  TidRun &R = Runs[Tid];
  if (!Collecting) {
    R.Last = Addr;
    return;
  }
  ++BlocksSeen;
  if (Addr <= R.Last) { // backwards transfer: we arrived at a loop head
    ++BackEdges;
    if (Addr == R.ActiveHead) {
      ++R.Trip;
    } else {
      flushRun(R);
      R.ActiveHead = Addr;
      R.Trip = 1;
    }
  }
  R.Last = Addr;
}

void Loopgrind::flushRun(TidRun &R) {
  if (!R.ActiveHead || !R.Trip)
    return;
  LoopStat &L = Loops[R.ActiveHead];
  ++L.Entries;
  L.Iterations += R.Trip;
  L.MaxTrip = std::max(L.MaxTrip, R.Trip);
  unsigned B = 0;
  while ((R.Trip >> (B + 1)) && B + 1 < HistBuckets)
    ++B;
  ++L.Hist[B];
  R.ActiveHead = 0;
  R.Trip = 0;
}

bool Loopgrind::handleClientRequest(int Tid, uint32_t Code,
                                    const uint32_t Args[4],
                                    uint32_t &Result) {
  switch (Code) {
  case LgStart:
    Collecting = true;
    return true;
  case LgStop:
    // Close out in-flight runs so a Stop/Start pair cannot weld two
    // distinct runs of the same head into one trip count.
    for (TidRun &R : Runs)
      flushRun(R);
    Collecting = false;
    return true;
  case LgAnnotate: {
    char Buf[64] = {};
    for (uint32_t I = 0; I + 1 < sizeof(Buf); ++I) {
      if (C->memory().read(Args[1] + I, &Buf[I], 1, true).Faulted ||
          !Buf[I])
        break;
    }
    Loops[Args[0]].Label = Buf;
    return true;
  }
  default:
    return false;
  }
}

void Loopgrind::fini(int ExitCode) {
  for (TidRun &R : Runs)
    flushRun(R);
  OutputSink &Out = C->output();
  Out.printf("==loopgrind== blocks entered: %llu, back-edges: %llu\n",
             static_cast<unsigned long long>(BlocksSeen),
             static_cast<unsigned long long>(BackEdges));

  std::vector<std::pair<uint64_t, uint32_t>> Order;
  for (const auto &[Head, L] : Loops)
    Order.push_back({L.Iterations, Head});
  std::sort(Order.rbegin(), Order.rend());

  Out.printf("==loopgrind== hottest loops (by iterations):\n");
  for (size_t I = 0; I != Order.size() && I != TopN; ++I) {
    const LoopStat &L = Loops[Order[I].second];
    double Avg = L.Entries ? static_cast<double>(L.Iterations) /
                                 static_cast<double>(L.Entries)
                           : 0.0;
    Out.printf("==loopgrind==   head 0x%08X  entries %llu  iters %llu  "
               "avg %.1f  max %llu%s%s\n",
               Order[I].second, static_cast<unsigned long long>(L.Entries),
               static_cast<unsigned long long>(L.Iterations), Avg,
               static_cast<unsigned long long>(L.MaxTrip),
               L.Label.empty() ? "" : "  ", L.Label.c_str());
    // Trip histogram, nonzero buckets only: "2^k" means trip counts in
    // [2^k, 2^(k+1)).
    std::string Hist;
    for (unsigned B = 0; B != HistBuckets; ++B)
      if (L.Hist[B]) {
        char Cell[48];
        std::snprintf(Cell, sizeof(Cell), " 2^%u:%llu", B,
                      static_cast<unsigned long long>(L.Hist[B]));
        Hist += Cell;
      }
    if (!Hist.empty())
      Out.printf("==loopgrind==     trips:%s\n", Hist.c_str());
  }

  // Cross-check against the chain graph: a filled chain slot whose target
  // is at or below the source's own entry is the JIT's view of the same
  // back-edge, with the exact transfer count the chain thunks profiled.
  std::vector<std::pair<uint64_t, std::pair<uint32_t, uint32_t>>> Edges;
  C->transTab().forEach([&](const Translation &T) {
    for (size_t S = 0; S != T.Chain.size(); ++S) {
      const Translation *To = T.Chain[S].load(std::memory_order_acquire);
      if (!To || To->Addr > T.Addr)
        continue;
      uint64_t N = S < T.EdgeExecs.size()
                       ? T.EdgeExecs[S].load(std::memory_order_relaxed)
                       : 0;
      if (N)
        Edges.push_back({N, {T.Addr, To->Addr}});
    }
  });
  std::sort(Edges.rbegin(), Edges.rend());
  Out.printf("==loopgrind== chain-graph back-edges: %llu\n",
             static_cast<unsigned long long>(Edges.size()));
  for (size_t I = 0; I != Edges.size() && I != TopN; ++I)
    Out.printf("==loopgrind==   0x%08X -> 0x%08X  transfers %llu\n",
               Edges[I].second.first, Edges[I].second.second,
               static_cast<unsigned long long>(Edges[I].first));
}
