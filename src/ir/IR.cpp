//===-- ir/IR.cpp - IR factories, typing, and evaluation ------------------==//

#include "ir/IR.h"

#include "support/FpCanon.h"

#include <cmath>
#include <cstring>
#include <map>
#include <mutex>

using namespace vg;
using namespace vg::ir;

//===----------------------------------------------------------------------===//
// Helper-callee registry
//===----------------------------------------------------------------------===//

namespace {

struct CalleeRegistry {
  std::mutex Mu;
  std::map<std::string, const Callee *> ByName;
  std::map<const Callee *, const char *> ByPtr;
};

CalleeRegistry &calleeRegistry() {
  static CalleeRegistry R; // never destroyed before the registrar statics
  return R;
}

} // namespace

void ir::registerCallee(const Callee *C) {
  if (!C || !C->Name)
    return;
  CalleeRegistry &R = calleeRegistry();
  std::lock_guard<std::mutex> L(R.Mu);
  auto [It, Inserted] = R.ByName.emplace(C->Name, C);
  if (!Inserted && It->second != C)
    unreachable("two helper callees registered under one name");
  R.ByPtr.emplace(C, C->Name);
}

const Callee *ir::findCalleeByName(const std::string &Name) {
  CalleeRegistry &R = calleeRegistry();
  std::lock_guard<std::mutex> L(R.Mu);
  auto It = R.ByName.find(Name);
  return It == R.ByName.end() ? nullptr : It->second;
}

const char *ir::registeredCalleeName(const Callee *C) {
  CalleeRegistry &R = calleeRegistry();
  std::lock_guard<std::mutex> L(R.Mu);
  auto It = R.ByPtr.find(C);
  return It == R.ByPtr.end() ? nullptr : It->second;
}

//===----------------------------------------------------------------------===//
// Types and op metadata
//===----------------------------------------------------------------------===//

const char *ir::tyName(Ty T) {
  switch (T) {
  case Ty::I1:
    return "I1";
  case Ty::I8:
    return "I8";
  case Ty::I16:
    return "I16";
  case Ty::I32:
    return "I32";
  case Ty::I64:
    return "I64";
  case Ty::F64:
    return "F64";
  }
  return "?";
}

unsigned ir::tySizeBits(Ty T) {
  switch (T) {
  case Ty::I1:
    return 1;
  case Ty::I8:
    return 8;
  case Ty::I16:
    return 16;
  case Ty::I32:
    return 32;
  case Ty::I64:
  case Ty::F64:
    return 64;
  }
  return 0;
}

namespace {
struct OpInfo {
  const char *Name;
  Ty Ret;
  unsigned NArgs;
  Ty A1, A2;
};
const OpInfo OpTable[] = {
#define X(name, rt, n, a1, a2) {#name, Ty::rt, n, Ty::a1, Ty::a2},
    VG_IROP_LIST(X)
#undef X
};
} // namespace

const char *ir::opName(Op O) { return OpTable[static_cast<unsigned>(O)].Name; }
Ty ir::opResultTy(Op O) { return OpTable[static_cast<unsigned>(O)].Ret; }
unsigned ir::opArity(Op O) { return OpTable[static_cast<unsigned>(O)].NArgs; }
Ty ir::opArgTy(Op O, unsigned Idx) {
  const OpInfo &I = OpTable[static_cast<unsigned>(O)];
  return Idx == 0 ? I.A1 : I.A2;
}

uint64_t ir::truncToTy(uint64_t V, Ty T) {
  switch (T) {
  case Ty::I1:
    return V & 1;
  case Ty::I8:
    return V & 0xFF;
  case Ty::I16:
    return V & 0xFFFF;
  case Ty::I32:
    return V & 0xFFFFFFFFull;
  case Ty::I64:
  case Ty::F64:
    return V;
  }
  return V;
}

const char *ir::jumpKindName(JumpKind K) {
  switch (K) {
  case JumpKind::Boring:
    return "Boring";
  case JumpKind::Call:
    return "Call";
  case JumpKind::Ret:
    return "Ret";
  case JumpKind::Syscall:
    return "Syscall";
  case JumpKind::ClientReq:
    return "ClientReq";
  case JumpKind::Yield:
    return "Yield";
  case JumpKind::NoDecode:
    return "NoDecode";
  case JumpKind::SigSEGV:
    return "SigSEGV";
  case JumpKind::Exit:
    return "Exit";
  case JumpKind::SmcFail:
    return "SmcFail";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Op evaluation (shared by folder, executor, tests)
//===----------------------------------------------------------------------===//

namespace {

double asF64(uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, 8);
  return D;
}

uint64_t fromF64(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, 8);
  return Bits;
}

uint64_t lanes8(uint64_t A, uint64_t B, int Mode) {
  uint32_t Out = 0;
  for (int L = 0; L != 4; ++L) {
    uint8_t X = static_cast<uint8_t>(A >> (8 * L));
    uint8_t Y = static_cast<uint8_t>(B >> (8 * L));
    uint8_t R = 0;
    switch (Mode) {
    case 0:
      R = static_cast<uint8_t>(X + Y);
      break;
    case 1:
      R = static_cast<uint8_t>(X - Y);
      break;
    case 2:
      R = static_cast<int8_t>(X) > static_cast<int8_t>(Y) ? 0xFF : 0;
      break;
    }
    Out |= static_cast<uint32_t>(R) << (8 * L);
  }
  return Out;
}

} // namespace

uint64_t ir::evalOp(Op O, uint64_t A, uint64_t B) {
  Ty RT = opResultTy(O);
  auto T = [&](uint64_t V) { return truncToTy(V, RT); };
  switch (O) {
  case Op::Add8:
  case Op::Add16:
  case Op::Add32:
  case Op::Add64:
    return T(A + B);
  case Op::Sub8:
  case Op::Sub16:
  case Op::Sub32:
  case Op::Sub64:
    return T(A - B);
  case Op::Mul8:
  case Op::Mul16:
  case Op::Mul32:
  case Op::Mul64:
    return T(A * B);
  case Op::And8:
  case Op::And16:
  case Op::And32:
  case Op::And64:
    return T(A & B);
  case Op::Or8:
  case Op::Or16:
  case Op::Or32:
  case Op::Or64:
    return T(A | B);
  case Op::Xor8:
  case Op::Xor16:
  case Op::Xor32:
  case Op::Xor64:
    return T(A ^ B);
  case Op::Shl8:
    return T(A << (B & 7));
  case Op::Shr8:
    return T((A & 0xFF) >> (B & 7));
  case Op::Sar8:
    return T(static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int8_t>(A)) >> (B & 7)));
  case Op::Shl16:
    return T(A << (B & 15));
  case Op::Shr16:
    return T((A & 0xFFFF) >> (B & 15));
  case Op::Sar16:
    return T(static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int16_t>(A)) >> (B & 15)));
  case Op::Shl32:
    return T(A << (B & 31));
  case Op::Shr32:
    return T((A & 0xFFFFFFFFull) >> (B & 31));
  case Op::Sar32:
    return T(static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int32_t>(A)) >> (B & 31)));
  case Op::Shl64:
    return A << (B & 63);
  case Op::Shr64:
    return A >> (B & 63);
  case Op::Sar64:
    return static_cast<uint64_t>(static_cast<int64_t>(A) >> (B & 63));
  case Op::DivU32: {
    uint32_t D = static_cast<uint32_t>(B);
    return D == 0 ? 0xFFFFFFFFull : (static_cast<uint32_t>(A) / D);
  }
  case Op::DivS32: {
    int32_t N = static_cast<int32_t>(A), D = static_cast<int32_t>(B);
    int32_t Q;
    if (D == 0)
      Q = -1;
    else if (N == INT32_MIN && D == -1)
      Q = INT32_MIN;
    else
      Q = N / D;
    return static_cast<uint32_t>(Q);
  }
  case Op::Not8:
  case Op::Not16:
  case Op::Not32:
  case Op::Not64:
    return T(~A);
  case Op::Neg8:
  case Op::Neg16:
  case Op::Neg32:
  case Op::Neg64:
    return T(0 - A);
  case Op::MullU32:
    return (A & 0xFFFFFFFFull) * (B & 0xFFFFFFFFull);
  case Op::MullS32:
    return static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int32_t>(A)) *
        static_cast<int64_t>(static_cast<int32_t>(B)));
  case Op::CmpEQ8:
    return static_cast<uint8_t>(A) == static_cast<uint8_t>(B);
  case Op::CmpNE8:
    return static_cast<uint8_t>(A) != static_cast<uint8_t>(B);
  case Op::CmpEQ16:
    return static_cast<uint16_t>(A) == static_cast<uint16_t>(B);
  case Op::CmpNE16:
    return static_cast<uint16_t>(A) != static_cast<uint16_t>(B);
  case Op::CmpEQ32:
    return static_cast<uint32_t>(A) == static_cast<uint32_t>(B);
  case Op::CmpNE32:
    return static_cast<uint32_t>(A) != static_cast<uint32_t>(B);
  case Op::CmpEQ64:
    return A == B;
  case Op::CmpNE64:
    return A != B;
  case Op::CmpLT32S:
    return static_cast<int32_t>(A) < static_cast<int32_t>(B);
  case Op::CmpLE32S:
    return static_cast<int32_t>(A) <= static_cast<int32_t>(B);
  case Op::CmpLT32U:
    return static_cast<uint32_t>(A) < static_cast<uint32_t>(B);
  case Op::CmpLE32U:
    return static_cast<uint32_t>(A) <= static_cast<uint32_t>(B);
  case Op::CmpLT64S:
    return static_cast<int64_t>(A) < static_cast<int64_t>(B);
  case Op::CmpLE64S:
    return static_cast<int64_t>(A) <= static_cast<int64_t>(B);
  case Op::CmpLT64U:
    return A < B;
  case Op::CmpLE64U:
    return A <= B;
  case Op::CmpNEZ8:
    return (A & 0xFF) != 0;
  case Op::CmpNEZ16:
    return (A & 0xFFFF) != 0;
  case Op::CmpNEZ32:
    return (A & 0xFFFFFFFFull) != 0;
  case Op::CmpNEZ64:
    return A != 0;
  case Op::U1to8:
  case Op::U1to32:
  case Op::U1to64:
    return A & 1;
  case Op::U8to16:
  case Op::U8to32:
  case Op::U8to64:
    return A & 0xFF;
  case Op::S8to32:
    return truncToTy(
        static_cast<uint64_t>(static_cast<int64_t>(static_cast<int8_t>(A))),
        Ty::I32);
  case Op::U16to32:
  case Op::U16to64:
    return A & 0xFFFF;
  case Op::S16to32:
    return truncToTy(
        static_cast<uint64_t>(static_cast<int64_t>(static_cast<int16_t>(A))),
        Ty::I32);
  case Op::U32to64:
    return A & 0xFFFFFFFFull;
  case Op::S32to64:
    return static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int32_t>(A)));
  case Op::T16to8:
    return A & 0xFF;
  case Op::T32to8:
    return A & 0xFF;
  case Op::T32to16:
    return A & 0xFFFF;
  case Op::T64to32:
    return A & 0xFFFFFFFFull;
  case Op::T64HIto32:
    return (A >> 32) & 0xFFFFFFFFull;
  case Op::T32to1:
  case Op::T64to1:
    return A & 1;
  case Op::Concat32HLto64:
    return (A << 32) | (B & 0xFFFFFFFFull);
  // Arithmetic results are NaN-canonicalised (support/FpCanon.h): which
  // input payload propagates is IEEE-unspecified, so without this the JIT
  // and the reference interpreter can legally disagree bit-for-bit.
  case Op::AddF64:
    return fromF64(canonF64(asF64(A) + asF64(B)));
  case Op::SubF64:
    return fromF64(canonF64(asF64(A) - asF64(B)));
  case Op::MulF64:
    return fromF64(canonF64(asF64(A) * asF64(B)));
  case Op::DivF64:
    return fromF64(canonF64(asF64(A) / asF64(B)));
  case Op::NegF64: // sign-bit op: fully determined, never canonicalised
    return fromF64(-asF64(A));
  case Op::AbsF64: // sign-bit op, as above
    return fromF64(std::fabs(asF64(A)));
  case Op::SqrtF64:
    return fromF64(canonF64(std::sqrt(asF64(A))));
  case Op::I32StoF64:
    return fromF64(static_cast<double>(static_cast<int32_t>(A)));
  case Op::F64toI32S: {
    double D = asF64(A);
    int32_t V;
    if (std::isnan(D) || D >= 2147483648.0 || D < -2147483648.0)
      V = INT32_MIN;
    else
      V = static_cast<int32_t>(D);
    return static_cast<uint32_t>(V);
  }
  case Op::CmpF64: {
    // Produces the VG1 NZCV word, matching RefInterp's FCMP.
    double X = asF64(A), Y = asF64(B);
    if (std::isnan(X) || std::isnan(Y))
      return 1; // FlagV
    uint32_t Fl = 0;
    if (X == Y)
      Fl |= 4; // FlagZ
    if (X < Y)
      Fl |= 8; // FlagN
    if (X >= Y)
      Fl |= 2; // FlagC
    return Fl;
  }
  case Op::ReinterpF64asI64:
  case Op::ReinterpI64asF64:
    return A;
  case Op::Add8x4:
    return lanes8(A, B, 0);
  case Op::Sub8x4:
    return lanes8(A, B, 1);
  case Op::CmpGT8Sx4:
    return lanes8(A, B, 2);
  }
  unreachable("evalOp: unhandled op");
}

//===----------------------------------------------------------------------===//
// IRSB factories
//===----------------------------------------------------------------------===//

Ty IRSB::typeOf(const Expr *E) const { return E->T; }

Expr *IRSB::mkConst(Ty T, uint64_t Bits) {
  Expr *E = alloc();
  E->Kind = ExprKind::Const;
  E->T = T;
  E->ConstVal = truncToTy(Bits, T);
  return E;
}

Expr *IRSB::constF64(double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, 8);
  return mkConst(Ty::F64, Bits);
}

Expr *IRSB::rdTmp(TmpId T) {
  assert(T < TmpTypes.size() && "RdTmp of unallocated temporary");
  Expr *E = alloc();
  E->Kind = ExprKind::RdTmp;
  E->T = TmpTypes[T];
  E->Tmp = T;
  return E;
}

Expr *IRSB::get(uint32_t Offset, Ty T) {
  Expr *E = alloc();
  E->Kind = ExprKind::Get;
  E->T = T;
  E->Offset = Offset;
  return E;
}

Expr *IRSB::unop(Op O, Expr *A) {
  assert(opArity(O) == 1 && "unop with non-unary op");
  Expr *E = alloc();
  E->Kind = ExprKind::Unop;
  E->T = opResultTy(O);
  E->Opc = O;
  E->Arg[0] = A;
  return E;
}

Expr *IRSB::binop(Op O, Expr *A, Expr *B) {
  assert(opArity(O) == 2 && "binop with non-binary op");
  Expr *E = alloc();
  E->Kind = ExprKind::Binop;
  E->T = opResultTy(O);
  E->Opc = O;
  E->Arg[0] = A;
  E->Arg[1] = B;
  return E;
}

Expr *IRSB::load(Ty T, Expr *Addr) {
  Expr *E = alloc();
  E->Kind = ExprKind::Load;
  E->T = T;
  E->Arg[0] = Addr;
  return E;
}

Expr *IRSB::ite(Expr *Cond, Expr *IfTrue, Expr *IfFalse) {
  assert(Cond->T == Ty::I1 && "ITE condition must be I1");
  Expr *E = alloc();
  E->Kind = ExprKind::ITE;
  E->T = IfTrue->T;
  E->Arg[0] = Cond;
  E->Arg[1] = IfTrue;
  E->Arg[2] = IfFalse;
  return E;
}

Expr *IRSB::ccall(const Callee *C, Ty RetTy, std::vector<Expr *> Args) {
  assert(Args.size() <= 4 && "helper ABI allows at most 4 arguments");
  Expr *E = alloc();
  E->Kind = ExprKind::CCall;
  E->T = RetTy;
  E->CalleeFn = C;
  E->CallArgs = std::move(Args);
  return E;
}

void IRSB::noop() {
  Stmt *S = allocStmt();
  S->Kind = StmtKind::NoOp;
  Statements.push_back(S);
}

void IRSB::imark(uint32_t Addr, uint8_t Len) {
  Stmt *S = allocStmt();
  S->Kind = StmtKind::IMark;
  S->IAddr = Addr;
  S->ILen = Len;
  Statements.push_back(S);
}

void IRSB::put(uint32_t Offset, Expr *Data) {
  Stmt *S = allocStmt();
  S->Kind = StmtKind::Put;
  S->Offset = Offset;
  S->Data = Data;
  Statements.push_back(S);
}

TmpId IRSB::wrTmp(Expr *Data) {
  TmpId T = newTmp(Data->T);
  wrTmpTo(T, Data);
  return T;
}

void IRSB::wrTmpTo(TmpId T, Expr *Data) {
  assert(typeOfTmp(T) == Data->T && "WrTmp type mismatch");
  Stmt *S = allocStmt();
  S->Kind = StmtKind::WrTmp;
  S->Tmp = T;
  S->Data = Data;
  Statements.push_back(S);
}

void IRSB::store(Expr *Addr, Expr *Data) {
  assert(Addr->T == Ty::I32 && "store address must be I32 (guest pointers)");
  Stmt *S = allocStmt();
  S->Kind = StmtKind::Store;
  S->Addr = Addr;
  S->Data = Data;
  Statements.push_back(S);
}

void IRSB::dirty(const Callee *C, std::vector<Expr *> Args, TmpId Dst,
                 Expr *Guard, std::vector<GuestFx> Fx) {
  assert(Args.size() <= 4 && "helper ABI allows at most 4 arguments");
  Stmt *S = allocStmt();
  S->Kind = StmtKind::Dirty;
  S->CalleeFn = C;
  S->CallArgs = std::move(Args);
  S->Tmp = Dst;
  S->Guard = Guard;
  S->Fx = std::move(Fx);
  Statements.push_back(S);
}

void IRSB::shadowProbe(Expr *Addr, Expr *Data, TmpId Dst, uint8_t Size) {
  assert(Addr->T == Ty::I32 && "probe address must be I32 (guest pointers)");
  assert(typeOfTmp(Dst) == Ty::I64 && "probe destination must be I64");
  Stmt *S = allocStmt();
  S->Kind = StmtKind::ShadowProbe;
  S->Addr = Addr;
  S->Data = Data;
  S->Tmp = Dst;
  S->AccSize = Size;
  Statements.push_back(S);
}

void IRSB::exit(Expr *Guard, uint32_t DstPC, JumpKind K) {
  assert(Guard->T == Ty::I1 && "exit guard must be I1");
  Stmt *S = allocStmt();
  S->Kind = StmtKind::Exit;
  S->Guard = Guard;
  S->DstPC = DstPC;
  S->JK = K;
  Statements.push_back(S);
}

//===----------------------------------------------------------------------===//
// Typechecker
//===----------------------------------------------------------------------===//

namespace {

struct Checker {
  const IRSB &SB;
  bool RequireFlat;
  std::string Diag;

  bool fail(const std::string &Msg) {
    if (Diag.empty())
      Diag = Msg;
    return false;
  }

  bool checkExpr(const Expr *E, bool MustBeAtom) {
    if (!E)
      return fail("null expression");
    if (MustBeAtom && !E->isAtom())
      return fail("non-atom operand in flat IR");
    switch (E->Kind) {
    case ExprKind::Const:
      if (E->ConstVal != truncToTy(E->ConstVal, E->T))
        return fail("constant wider than its type");
      return true;
    case ExprKind::RdTmp:
      if (E->Tmp >= SB.numTmps())
        return fail("RdTmp of out-of-range temporary");
      if (SB.typeOfTmp(E->Tmp) != E->T)
        return fail("RdTmp type disagrees with type environment");
      return true;
    case ExprKind::Get:
      return true;
    case ExprKind::Unop:
      if (opArity(E->Opc) != 1)
        return fail("unop node with binary opcode");
      if (E->T != opResultTy(E->Opc))
        return fail("unop result type mismatch");
      if (!checkExpr(E->Arg[0], RequireFlat))
        return false;
      if (E->Arg[0]->T != opArgTy(E->Opc, 0))
        return fail(std::string("unop arg type mismatch for ") +
                    opName(E->Opc));
      return true;
    case ExprKind::Binop:
      if (opArity(E->Opc) != 2)
        return fail("binop node with unary opcode");
      if (E->T != opResultTy(E->Opc))
        return fail("binop result type mismatch");
      for (unsigned I = 0; I != 2; ++I) {
        if (!checkExpr(E->Arg[I], RequireFlat))
          return false;
        if (E->Arg[I]->T != opArgTy(E->Opc, I))
          return fail(std::string("binop arg type mismatch for ") +
                      opName(E->Opc));
      }
      return true;
    case ExprKind::Load:
      if (!checkExpr(E->Arg[0], RequireFlat))
        return false;
      if (E->Arg[0]->T != Ty::I32)
        return fail("load address must be I32");
      return true;
    case ExprKind::ITE:
      if (!checkExpr(E->Arg[0], RequireFlat) ||
          !checkExpr(E->Arg[1], RequireFlat) ||
          !checkExpr(E->Arg[2], RequireFlat))
        return false;
      if (E->Arg[0]->T != Ty::I1)
        return fail("ITE condition must be I1");
      if (E->Arg[1]->T != E->T || E->Arg[2]->T != E->T)
        return fail("ITE arm type mismatch");
      return true;
    case ExprKind::CCall:
      if (!E->CalleeFn)
        return fail("CCall without callee");
      for (const Expr *A : E->CallArgs)
        if (!checkExpr(A, RequireFlat))
          return false;
      return true;
    }
    return fail("corrupt expression kind");
  }

  bool checkStmt(const Stmt *S) {
    switch (S->Kind) {
    case StmtKind::NoOp:
    case StmtKind::IMark:
      return true;
    case StmtKind::Put:
      return checkExpr(S->Data, RequireFlat);
    case StmtKind::WrTmp:
      if (S->Tmp >= SB.numTmps())
        return fail("WrTmp to out-of-range temporary");
      // The RHS of a WrTmp may be a (one-level or tree) expression; in flat
      // IR its *operands* must be atoms, which checkExpr enforces.
      if (!checkExpr(S->Data, false))
        return false;
      if (SB.typeOfTmp(S->Tmp) != S->Data->T)
        return fail("WrTmp type disagrees with type environment");
      if (RequireFlat) {
        // Flat IR: RHS must be exactly one operation deep.
        const Expr *D = S->Data;
        switch (D->Kind) {
        case ExprKind::Unop:
          if (!D->Arg[0]->isAtom())
            return fail("flat IR: nested unop operand");
          break;
        case ExprKind::Binop:
          if (!D->Arg[0]->isAtom() || !D->Arg[1]->isAtom())
            return fail("flat IR: nested binop operand");
          break;
        case ExprKind::Load:
          if (!D->Arg[0]->isAtom())
            return fail("flat IR: nested load address");
          break;
        case ExprKind::ITE:
          for (int I = 0; I != 3; ++I)
            if (!D->Arg[I]->isAtom())
              return fail("flat IR: nested ITE operand");
          break;
        case ExprKind::CCall:
          for (const Expr *A : D->CallArgs)
            if (!A->isAtom())
              return fail("flat IR: nested CCall argument");
          break;
        default:
          break;
        }
      }
      return true;
    case StmtKind::Store:
      return checkExpr(S->Addr, RequireFlat) && checkExpr(S->Data, RequireFlat);
    case StmtKind::Dirty:
      if (!S->CalleeFn)
        return fail("Dirty without callee");
      for (const Expr *A : S->CallArgs)
        if (!checkExpr(A, RequireFlat))
          return false;
      if (S->Guard && !checkExpr(S->Guard, RequireFlat))
        return false;
      if (S->Guard && S->Guard->T != Ty::I1)
        return fail("Dirty guard must be I1");
      if (S->Tmp != NoTmp && S->Tmp >= SB.numTmps())
        return fail("Dirty destination out of range");
      return true;
    case StmtKind::Exit:
      if (!checkExpr(S->Guard, RequireFlat))
        return false;
      if (S->Guard->T != Ty::I1)
        return fail("Exit guard must be I1");
      return true;
    case StmtKind::ShadowProbe:
      if (!checkExpr(S->Addr, RequireFlat))
        return false;
      if (S->Addr->T != Ty::I32)
        return fail("ShadowProbe address must be I32");
      if (S->Data) {
        if (!checkExpr(S->Data, RequireFlat))
          return false;
        if (S->Data->T != Ty::I32)
          return fail("ShadowProbe store data must be I32");
      }
      if (S->Tmp >= SB.numTmps())
        return fail("ShadowProbe destination out of range");
      if (SB.typeOfTmp(S->Tmp) != Ty::I64)
        return fail("ShadowProbe destination must be I64");
      if (S->AccSize != 4)
        return fail("ShadowProbe only supports 4-byte accesses");
      return true;
    }
    return fail("corrupt statement kind");
  }
};

} // namespace

std::string IRSB::typecheck(bool RequireFlat) const {
  Checker C{*this, RequireFlat, {}};
  for (const Stmt *S : Statements)
    if (!C.checkStmt(S))
      return C.Diag;
  if (!Next)
    return "superblock has no next expression";
  if (!C.checkExpr(Next, RequireFlat))
    return C.Diag;
  if (Next->T != Ty::I32)
    return "next expression must be an I32 guest address";
  return {};
}
