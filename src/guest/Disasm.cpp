//===-- guest/Disasm.cpp - VG1 disassembly printing -----------------------==//

#include "guest/Disasm.h"

#include "guest/Decoder.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>

using namespace vg;
using namespace vg::vg1;

namespace {

std::string fmt(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));
std::string fmt(const char *Fmt, ...) {
  char Buf[256];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  return Buf;
}

const char *condName(Cond C) {
  static const char *Names[] = {"eq", "ne", "lt", "ge", "ltu",
                                "geu", "gt", "le", "mi", "pl"};
  return Names[static_cast<unsigned>(C)];
}

} // namespace

std::string vg1::toString(const Instr &I) {
  auto R = [](unsigned N) { return fmt("r%u", N); };
  auto F = [](unsigned N) { return fmt("f%u", N); };
  switch (I.Op) {
  case Opcode::NOP:
    return "nop";
  case Opcode::HLT:
    return "hlt";
  case Opcode::MOVI:
    return fmt("movi r%u, 0x%x", I.Rd, static_cast<uint32_t>(I.Imm));
  case Opcode::MOV:
    return "mov " + R(I.Rd) + ", " + R(I.Rs);
  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::SHL:
  case Opcode::SHR:
  case Opcode::SAR:
  case Opcode::MUL:
  case Opcode::DIVU:
  case Opcode::DIVS: {
    static const char *Names[] = {"add", "sub", "and", "or",  "xor", "shl",
                                  "shr", "sar", "mul", "divu", "divs"};
    unsigned Idx = static_cast<unsigned>(I.Op) -
                   static_cast<unsigned>(Opcode::ADD);
    return fmt("%s r%u, r%u, r%u", Names[Idx], I.Rd, I.Rs, I.Rt);
  }
  case Opcode::ADDI:
    return fmt("addi r%u, r%u, %d", I.Rd, I.Rs, I.Imm);
  case Opcode::ANDI:
    return fmt("andi r%u, r%u, 0x%x", I.Rd, I.Rs,
               static_cast<uint32_t>(I.Imm));
  case Opcode::SHLI:
    return fmt("shli r%u, r%u, %d", I.Rd, I.Rs, I.Imm);
  case Opcode::SHRI:
    return fmt("shri r%u, r%u, %d", I.Rd, I.Rs, I.Imm);
  case Opcode::SARI:
    return fmt("sari r%u, r%u, %d", I.Rd, I.Rs, I.Imm);
  case Opcode::CMP:
    return fmt("cmp r%u, r%u", I.Rd, I.Rs);
  case Opcode::CMPI:
    return fmt("cmpi r%u, %d", I.Rd, I.Imm);
  case Opcode::LD:
    return fmt("ld r%u, [r%u%+d]", I.Rd, I.Rs, I.Imm);
  case Opcode::ST:
    return fmt("st [r%u%+d], r%u", I.Rd, I.Imm, I.Rs);
  case Opcode::LDB:
    return fmt("ldb r%u, [r%u%+d]", I.Rd, I.Rs, I.Imm);
  case Opcode::LDSB:
    return fmt("ldsb r%u, [r%u%+d]", I.Rd, I.Rs, I.Imm);
  case Opcode::STB:
    return fmt("stb [r%u%+d], r%u", I.Rd, I.Imm, I.Rs);
  case Opcode::LDH:
    return fmt("ldh r%u, [r%u%+d]", I.Rd, I.Rs, I.Imm);
  case Opcode::LDSH:
    return fmt("ldsh r%u, [r%u%+d]", I.Rd, I.Rs, I.Imm);
  case Opcode::STH:
    return fmt("sth [r%u%+d], r%u", I.Rd, I.Imm, I.Rs);
  case Opcode::LDX:
    return fmt("ldx r%u, [r%u + r%u<<%u %+d]", I.Rd, I.Rs, I.Rt, I.Scale,
               I.Imm);
  case Opcode::STX:
    return fmt("stx [r%u + r%u<<%u %+d], r%u", I.Rd, I.Rt, I.Scale, I.Imm,
               I.Rs);
  case Opcode::BCC:
    return fmt("b%s 0x%x", condName(I.BCond), static_cast<uint32_t>(I.Imm));
  case Opcode::JMP:
    return fmt("jmp 0x%x", static_cast<uint32_t>(I.Imm));
  case Opcode::JMPR:
    return "jmp* " + R(I.Rd);
  case Opcode::CALL:
    return fmt("call 0x%x", static_cast<uint32_t>(I.Imm));
  case Opcode::CALLR:
    return "call* " + R(I.Rd);
  case Opcode::RET:
    return "ret";
  case Opcode::PUSH:
    return "push " + R(I.Rd);
  case Opcode::POP:
    return "pop " + R(I.Rd);
  case Opcode::SYS:
    return "sys";
  case Opcode::CPUINFO:
    return "cpuinfo";
  case Opcode::CLREQ:
    return "clreq";
  case Opcode::FADD:
  case Opcode::FSUB:
  case Opcode::FMUL:
  case Opcode::FDIV: {
    static const char *Names[] = {"fadd", "fsub", "fmul", "fdiv"};
    unsigned Idx = static_cast<unsigned>(I.Op) -
                   static_cast<unsigned>(Opcode::FADD);
    return fmt("%s f%u, f%u, f%u", Names[Idx], I.Rd, I.Rs, I.Rt);
  }
  case Opcode::FNEG:
    return "fneg " + F(I.Rd) + ", " + F(I.Rs);
  case Opcode::FMOV:
    return "fmov " + F(I.Rd) + ", " + F(I.Rs);
  case Opcode::FLD:
    return fmt("fld f%u, [r%u%+d]", I.Rd, I.Rs, I.Imm);
  case Opcode::FST:
    return fmt("fst [r%u%+d], f%u", I.Rd, I.Imm, I.Rs);
  case Opcode::FITOD:
    return "fitod " + F(I.Rd) + ", " + R(I.Rs);
  case Opcode::FDTOI:
    return "fdtoi " + R(I.Rd) + ", " + F(I.Rs);
  case Opcode::FCMP:
    return "fcmp " + F(I.Rd) + ", " + F(I.Rs);
  case Opcode::FMOVI: {
    double D;
    std::memcpy(&D, &I.Imm64, 8);
    return fmt("fmovi f%u, %g", I.Rd, D);
  }
  case Opcode::VADD8:
    return fmt("vadd8 r%u, r%u, r%u", I.Rd, I.Rs, I.Rt);
  case Opcode::VSUB8:
    return fmt("vsub8 r%u, r%u, r%u", I.Rd, I.Rs, I.Rt);
  case Opcode::VCMPGT8:
    return fmt("vcmpgt8 r%u, r%u, r%u", I.Rd, I.Rs, I.Rt);
  }
  return "<bad>";
}

std::string vg1::disassembleRange(const uint8_t *Bytes, size_t Len,
                                  uint32_t BaseAddr) {
  std::string Out;
  size_t Off = 0;
  while (Off < Len) {
    Instr I;
    if (!decode(Bytes + Off, Len - Off, I))
      break;
    Out += fmt("0x%08x: %s\n", BaseAddr + static_cast<uint32_t>(Off),
               toString(I).c_str());
    Off += I.Len;
  }
  return Out;
}
