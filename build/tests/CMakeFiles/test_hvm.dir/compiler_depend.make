# Empty compiler generated dependencies file for test_hvm.
# This may be replaced when dependencies are built.
