//===-- core/Launcher.cpp - One-call program runners ----------------------==//

#include "core/Launcher.h"

#include <chrono>

using namespace vg;
using namespace vg::vg1;

namespace {

double now() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

} // namespace

RunReport vg::runNative(const GuestImage &Img, const std::string &StdinData,
                        uint64_t MaxInsns) {
  RunReport R;
  GuestMemory Mem;
  AddressSpace AS;
  AS.reserveCoreRegion(); // same layout constraints as under the core
  SimKernel Kernel(AS, /*Events=*/nullptr, /*Host=*/nullptr);
  Kernel.provideStdin(StdinData);

  uint32_t HighestEnd = 0;
  for (const ImageSegment &S : Img.Segments) {
    uint32_t Len = static_cast<uint32_t>(S.Bytes.size());
    Mem.map(S.Base, Len, S.Perms);
    Mem.write(S.Base, S.Bytes.data(), Len, /*IgnorePerms=*/true);
    AS.add(S.Base, Len, S.Perms,
           (S.Perms & PermExec) ? SegKind::ClientText : SegKind::ClientData,
           "seg");
    HighestEnd = std::max(HighestEnd, S.Base + Len);
  }
  uint32_t HeapStart =
      AddressSpace::pageUp(HighestEnd) + AddressSpace::PageSize;
  AS.add(HeapStart, AddressSpace::PageSize, PermRW, SegKind::ClientHeap,
         "brk");
  Mem.map(HeapStart, AddressSpace::PageSize, PermRW);
  uint32_t StackSize = AddressSpace::pageUp(Img.StackSize);
  Mem.map(ClientStackTop - StackSize, StackSize, PermRW);
  AS.add(ClientStackTop - StackSize, StackSize, PermRW, SegKind::ClientStack,
         "stack");

  RefInterp Cpu(Mem, &Kernel);
  Cpu.PC = Img.Entry;
  Cpu.R[RegSP] = ClientStackTop - ClientInitialSPGap;

  double T0 = now();
  RunResult RR = Cpu.run(MaxInsns);
  R.Seconds = now() - T0;

  R.NativeInsns = RR.InsnsExecuted;
  R.Syscalls = Kernel.syscallCount();
  R.Completed =
      RR.Status == RunStatus::Exited || RR.Status == RunStatus::Halted;
  R.ExitCode = Kernel.exitCode();
  R.Stdout = Kernel.stdoutText();
  R.Stderr = Kernel.stderrText();
  return R;
}

RunReport vg::runUnderCoreWith(const GuestImage &Img, Tool *ToolPlugin,
                               const std::vector<std::string> &ExtraOptions,
                               const std::string &StdinData,
                               uint64_t MaxBlocks,
                               const std::function<void(Core &)> &Setup) {
  RunReport R;
  Core C(ToolPlugin);
  C.output().useBuffer();
  std::vector<std::string> Unknown = C.options().parse(ExtraOptions);
  if (!Unknown.empty())
    fatalError(("unknown option: " + Unknown[0]).c_str());
  C.applyOptions();
  C.kernel().provideStdin(StdinData);
  C.loadImage(Img);
  if (Setup)
    Setup(C);

  double T0 = now();
  CoreExit E = C.run(MaxBlocks);
  R.Seconds = now() - T0;

  R.Completed = E.K == CoreExit::Kind::Exited;
  R.ExitCode = E.Code;
  R.FatalSignal = E.Signal;
  R.Stdout = C.kernel().stdoutText();
  R.Stderr = C.kernel().stderrText();
  R.ToolOutput = C.output().takeBuffer();
  R.Stats = C.stats();
  R.TTStats = C.transTab().stats();
  R.Jit = C.translationService().jitStats();
  R.Syscalls = C.kernel().syscallCount();
  return R;
}

RunReport vg::runUnderCore(const GuestImage &Img, Tool *ToolPlugin,
                           const std::vector<std::string> &ExtraOptions,
                           const std::string &StdinData, uint64_t MaxBlocks) {
  return runUnderCoreWith(Img, ToolPlugin, ExtraOptions, StdinData, MaxBlocks,
                          nullptr);
}
