//===-- guestlib/GuestLib.h - The guest runtime library ---------*- C++ -*-==//
///
/// \file
/// A tiny libc for VG1 guest programs, emitted as guest machine code via
/// the assembler API (the stand-in for glibc + crt0, Section 3.3). It
/// provides:
///
///   _start           calls main, then the exit syscall with main's result
///   malloc/free/     a real bump allocator over brk with size headers, so
///   calloc/realloc   programs work when run natively; under a
///                    heap-tracking tool, the core redirects these symbols
///                    to its replacement allocator (R8, Section 3.13)
///   memcpy/memset/strlen
///   print/print_u32  write(2) to stdout
///   exit
///
/// Calling convention: arguments in r1..r5, result in r0; r0..r5 are
/// caller-saved, r6..r13 callee-saved; return addresses live on the stack
/// (CALL/RET).
///
//===----------------------------------------------------------------------===//
#ifndef VG_GUESTLIB_GUESTLIB_H
#define VG_GUESTLIB_GUESTLIB_H

#include "guest/Assembler.h"

namespace vg {

/// Labels of the emitted library entry points (also bound as symbols in
/// the code assembler, so images expose them for redirection).
struct GuestLibLabels {
  vg1::Label Malloc, Free, Calloc, Realloc;
  vg1::Label Memcpy, Memset, Strlen;
  vg1::Label Print, PrintU32;
  vg1::Label Exit;
};

/// Emits the library body into \p Code and its mutable state into \p Data.
/// Call once per image, anywhere in the code stream (the library never
/// falls through into adjacent code).
GuestLibLabels emitGuestLib(vg1::Assembler &Code, vg1::Assembler &Data);

/// Emits the _start stub: call \p Main, then exit(r0). Binds the "_start"
/// symbol; the image entry should be its address (returned).
uint32_t emitStart(vg1::Assembler &Code, vg1::Label Main);

/// Emits an inline client request with immediate arguments — the moral
/// equivalent of the VALGRIND_DO_CLIENT_REQUEST macro: loads \p Request
/// into r0 and the arguments into r1..r4, then CLREQ. The result is left
/// in r0 (0 when running natively, exactly like the real macros).
/// Clobbers r0..r4.
void emitClientRequest(vg1::Assembler &Code, uint32_t Request,
                       uint32_t Arg1 = 0, uint32_t Arg2 = 0,
                       uint32_t Arg3 = 0, uint32_t Arg4 = 0);

} // namespace vg

#endif // VG_GUESTLIB_GUESTLIB_H
