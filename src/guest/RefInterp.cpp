//===-- guest/RefInterp.cpp - Reference VG1 interpreter -------------------==//

#include "guest/RefInterp.h"

#include "guest/Decoder.h"
#include "support/FpCanon.h"

#include <cmath>
#include <cstring>

using namespace vg;
using namespace vg::vg1;

namespace {

/// Packed-SIMD helpers: 4 independent byte lanes in a 32-bit word.
uint32_t laneAdd8(uint32_t A, uint32_t B) {
  uint32_t Out = 0;
  for (int L = 0; L != 4; ++L) {
    uint8_t S = static_cast<uint8_t>((A >> (8 * L)) + (B >> (8 * L)));
    Out |= static_cast<uint32_t>(S) << (8 * L);
  }
  return Out;
}

uint32_t laneSub8(uint32_t A, uint32_t B) {
  uint32_t Out = 0;
  for (int L = 0; L != 4; ++L) {
    uint8_t S = static_cast<uint8_t>((A >> (8 * L)) - (B >> (8 * L)));
    Out |= static_cast<uint32_t>(S) << (8 * L);
  }
  return Out;
}

uint32_t laneCmpGT8(uint32_t A, uint32_t B) {
  uint32_t Out = 0;
  for (int L = 0; L != 4; ++L) {
    int8_t X = static_cast<int8_t>(A >> (8 * L));
    int8_t Y = static_cast<int8_t>(B >> (8 * L));
    if (X > Y)
      Out |= 0xFFu << (8 * L);
  }
  return Out;
}

uint32_t fcmpFlags(double A, double B) {
  if (std::isnan(A) || std::isnan(B))
    return FlagV; // unordered
  uint32_t Fl = 0;
  if (A == B)
    Fl |= FlagZ;
  if (A < B)
    Fl |= FlagN;
  if (A >= B)
    Fl |= FlagC;
  return Fl;
}

} // namespace

RunResult RefInterp::run(uint64_t MaxInsns) {
  RunResult Res;
  uint8_t Buf[MaxInstrLen];

  while (Res.InsnsExecuted < MaxInsns) {
    // Predecoded-instruction fast path (the "hardware icache + decoder").
    DEntry &DE = DCache[(PC >> 0) & (DCacheSize - 1)];
    if (DE.Addr != PC) {
      // Fetch as many bytes as are executable at PC (an instruction may
      // end just before an unmapped page).
      uint32_t Got = 0;
      while (Got < MaxInstrLen) {
        if (Memory.fetch(PC + Got, Buf + Got, 1).Faulted)
          break;
        ++Got;
      }
      if (Got == 0) {
        Res.Status = RunStatus::Faulted;
        Res.Fault = MemFault{true, PC, false};
        Res.FaultPC = PC;
        return Res;
      }
      if (!decode(Buf, Got, DE.I)) {
        Res.Status = RunStatus::BadInstr;
        Res.FaultPC = PC;
        return Res;
      }
      DE.Addr = PC;
    }
    const Instr &I = DE.I;

    uint32_t Next = PC + I.Len;
    auto SetFlagsAdd = [&](uint32_t D1, uint32_t D2) {
      CCOpVal = static_cast<uint32_t>(CCOp::Add);
      CCDep1 = D1;
      CCDep2 = D2;
    };
    auto SetFlagsSub = [&](uint32_t D1, uint32_t D2) {
      CCOpVal = static_cast<uint32_t>(CCOp::Sub);
      CCDep1 = D1;
      CCDep2 = D2;
    };
    auto SetFlagsLogic = [&](uint32_t ResVal) {
      CCOpVal = static_cast<uint32_t>(CCOp::Logic);
      CCDep1 = ResVal;
      CCDep2 = 0;
    };
    auto MemFaultOut = [&](MemFault F) {
      Res.Status = RunStatus::Faulted;
      Res.Fault = F;
      Res.FaultPC = PC;
    };

    switch (I.Op) {
    case Opcode::NOP:
      break;
    case Opcode::HLT:
      ++Res.InsnsExecuted;
      Res.Status = RunStatus::Halted;
      return Res;
    case Opcode::MOVI:
      R[I.Rd] = static_cast<uint32_t>(I.Imm);
      break;
    case Opcode::MOV:
      R[I.Rd] = R[I.Rs];
      break;
    case Opcode::ADD: {
      uint32_t A = R[I.Rs], B = R[I.Rt];
      R[I.Rd] = A + B;
      SetFlagsAdd(A, B);
      break;
    }
    case Opcode::SUB: {
      uint32_t A = R[I.Rs], B = R[I.Rt];
      R[I.Rd] = A - B;
      SetFlagsSub(A, B);
      break;
    }
    case Opcode::AND:
      R[I.Rd] = R[I.Rs] & R[I.Rt];
      SetFlagsLogic(R[I.Rd]);
      break;
    case Opcode::OR:
      R[I.Rd] = R[I.Rs] | R[I.Rt];
      SetFlagsLogic(R[I.Rd]);
      break;
    case Opcode::XOR:
      R[I.Rd] = R[I.Rs] ^ R[I.Rt];
      SetFlagsLogic(R[I.Rd]);
      break;
    case Opcode::SHL:
      R[I.Rd] = R[I.Rs] << (R[I.Rt] & 31);
      SetFlagsLogic(R[I.Rd]);
      break;
    case Opcode::SHR:
      R[I.Rd] = R[I.Rs] >> (R[I.Rt] & 31);
      SetFlagsLogic(R[I.Rd]);
      break;
    case Opcode::SAR:
      R[I.Rd] = static_cast<uint32_t>(static_cast<int32_t>(R[I.Rs]) >>
                                      (R[I.Rt] & 31));
      SetFlagsLogic(R[I.Rd]);
      break;
    case Opcode::MUL:
      R[I.Rd] = R[I.Rs] * R[I.Rt];
      break;
    case Opcode::DIVU: {
      uint32_t D = R[I.Rt];
      // Division by zero yields all-ones, matching the HVM back end (VG1
      // defines this rather than faulting, to keep workloads total).
      R[I.Rd] = D == 0 ? 0xFFFFFFFFu : R[I.Rs] / D;
      break;
    }
    case Opcode::DIVS: {
      int32_t N = static_cast<int32_t>(R[I.Rs]);
      int32_t D = static_cast<int32_t>(R[I.Rt]);
      int32_t Q;
      if (D == 0)
        Q = -1;
      else if (N == INT32_MIN && D == -1)
        Q = INT32_MIN; // wraps
      else
        Q = N / D;
      R[I.Rd] = static_cast<uint32_t>(Q);
      break;
    }
    case Opcode::ADDI: {
      uint32_t A = R[I.Rs], B = static_cast<uint32_t>(I.Imm);
      R[I.Rd] = A + B;
      SetFlagsAdd(A, B);
      break;
    }
    case Opcode::ANDI:
      R[I.Rd] = R[I.Rs] & static_cast<uint32_t>(I.Imm);
      SetFlagsLogic(R[I.Rd]);
      break;
    case Opcode::SHLI:
      R[I.Rd] = R[I.Rs] << (I.Imm & 31);
      SetFlagsLogic(R[I.Rd]);
      break;
    case Opcode::SHRI:
      R[I.Rd] = R[I.Rs] >> (I.Imm & 31);
      SetFlagsLogic(R[I.Rd]);
      break;
    case Opcode::SARI:
      R[I.Rd] = static_cast<uint32_t>(static_cast<int32_t>(R[I.Rs]) >>
                                      (I.Imm & 31));
      SetFlagsLogic(R[I.Rd]);
      break;
    case Opcode::CMP:
      SetFlagsSub(R[I.Rd], R[I.Rs]);
      break;
    case Opcode::CMPI:
      SetFlagsSub(R[I.Rd], static_cast<uint32_t>(I.Imm));
      break;

    case Opcode::LD: {
      uint32_t V;
      if (MemFault F = Memory.readU32(R[I.Rs] + I.Imm, V); F.Faulted) {
        MemFaultOut(F);
        return Res;
      }
      R[I.Rd] = V;
      break;
    }
    case Opcode::ST:
      if (MemFault F = Memory.writeU32(R[I.Rd] + I.Imm, R[I.Rs]); F.Faulted) {
        MemFaultOut(F);
        return Res;
      }
      break;
    case Opcode::LDB: {
      uint8_t V;
      if (MemFault F = Memory.readU8(R[I.Rs] + I.Imm, V); F.Faulted) {
        MemFaultOut(F);
        return Res;
      }
      R[I.Rd] = V;
      break;
    }
    case Opcode::LDSB: {
      uint8_t V;
      if (MemFault F = Memory.readU8(R[I.Rs] + I.Imm, V); F.Faulted) {
        MemFaultOut(F);
        return Res;
      }
      R[I.Rd] = static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(V)));
      break;
    }
    case Opcode::STB:
      if (MemFault F =
              Memory.writeU8(R[I.Rd] + I.Imm, static_cast<uint8_t>(R[I.Rs]));
          F.Faulted) {
        MemFaultOut(F);
        return Res;
      }
      break;
    case Opcode::LDH: {
      uint16_t V;
      if (MemFault F = Memory.readU16(R[I.Rs] + I.Imm, V); F.Faulted) {
        MemFaultOut(F);
        return Res;
      }
      R[I.Rd] = V;
      break;
    }
    case Opcode::LDSH: {
      uint16_t V;
      if (MemFault F = Memory.readU16(R[I.Rs] + I.Imm, V); F.Faulted) {
        MemFaultOut(F);
        return Res;
      }
      R[I.Rd] =
          static_cast<uint32_t>(static_cast<int32_t>(static_cast<int16_t>(V)));
      break;
    }
    case Opcode::STH:
      if (MemFault F =
              Memory.writeU16(R[I.Rd] + I.Imm, static_cast<uint16_t>(R[I.Rs]));
          F.Faulted) {
        MemFaultOut(F);
        return Res;
      }
      break;
    case Opcode::LDX: {
      uint32_t Addr = R[I.Rs] + (R[I.Rt] << I.Scale) +
                      static_cast<uint32_t>(I.Imm);
      uint32_t V;
      if (MemFault F = Memory.readU32(Addr, V); F.Faulted) {
        MemFaultOut(F);
        return Res;
      }
      R[I.Rd] = V;
      break;
    }
    case Opcode::STX: {
      uint32_t Addr = R[I.Rd] + (R[I.Rt] << I.Scale) +
                      static_cast<uint32_t>(I.Imm);
      if (MemFault F = Memory.writeU32(Addr, R[I.Rs]); F.Faulted) {
        MemFaultOut(F);
        return Res;
      }
      break;
    }

    case Opcode::BCC:
      if (condHolds(I.BCond, flags()))
        Next = static_cast<uint32_t>(I.Imm);
      break;
    case Opcode::JMP:
      Next = static_cast<uint32_t>(I.Imm);
      break;
    case Opcode::JMPR:
      Next = R[I.Rd];
      break;
    case Opcode::CALL:
    case Opcode::CALLR: {
      uint32_t Target = I.Op == Opcode::CALL ? static_cast<uint32_t>(I.Imm)
                                             : R[I.Rd];
      uint32_t NewSP = R[RegSP] - 4;
      if (MemFault F = Memory.writeU32(NewSP, Next); F.Faulted) {
        MemFaultOut(F);
        return Res;
      }
      R[RegSP] = NewSP;
      Next = Target;
      break;
    }
    case Opcode::RET: {
      uint32_t RetAddr;
      if (MemFault F = Memory.readU32(R[RegSP], RetAddr); F.Faulted) {
        MemFaultOut(F);
        return Res;
      }
      R[RegSP] += 4;
      Next = RetAddr;
      break;
    }
    case Opcode::PUSH: {
      uint32_t NewSP = R[RegSP] - 4;
      if (MemFault F = Memory.writeU32(NewSP, R[I.Rd]); F.Faulted) {
        MemFaultOut(F);
        return Res;
      }
      R[RegSP] = NewSP;
      break;
    }
    case Opcode::POP: {
      uint32_t V;
      if (MemFault F = Memory.readU32(R[RegSP], V); F.Faulted) {
        MemFaultOut(F);
        return Res;
      }
      R[RegSP] += 4;
      R[I.Rd] = V;
      break;
    }

    case Opcode::SYS: {
      ++Res.InsnsExecuted;
      PC = Next; // syscall sees the post-instruction PC
      if (Sys && Sys->onSyscall(*this) == SyscallSink::Action::Exit) {
        Res.Status = RunStatus::Exited;
        return Res;
      }
      Next = PC; // the sink may have redirected control (e.g. signals)
      PC = Next;
      continue; // InsnsExecuted already counted
    }
    case Opcode::CPUINFO:
      R[0] = CpuInfoMagic;
      R[1] = CpuInfoVersion;
      break;
    case Opcode::CLREQ:
      // Running "natively": client requests are defined to be no-ops that
      // return 0, just as real Valgrind's macros do outside Valgrind.
      R[0] = 0;
      break;

    // Arithmetic results are NaN-canonicalised to match the JIT's ALU
    // evaluator exactly (see support/FpCanon.h for why).
    case Opcode::FADD:
      F[I.Rd] = canonF64(F[I.Rs] + F[I.Rt]);
      break;
    case Opcode::FSUB:
      F[I.Rd] = canonF64(F[I.Rs] - F[I.Rt]);
      break;
    case Opcode::FMUL:
      F[I.Rd] = canonF64(F[I.Rs] * F[I.Rt]);
      break;
    case Opcode::FDIV:
      F[I.Rd] = canonF64(F[I.Rs] / F[I.Rt]);
      break;
    case Opcode::FNEG:
      F[I.Rd] = -F[I.Rs];
      break;
    case Opcode::FMOV:
      F[I.Rd] = F[I.Rs];
      break;
    case Opcode::FLD: {
      uint64_t Bits;
      if (MemFault Flt = Memory.readU64(R[I.Rs] + I.Imm, Bits); Flt.Faulted) {
        MemFaultOut(Flt);
        return Res;
      }
      std::memcpy(&F[I.Rd], &Bits, 8);
      break;
    }
    case Opcode::FST: {
      uint64_t Bits;
      std::memcpy(&Bits, &F[I.Rs], 8);
      if (MemFault Flt = Memory.writeU64(R[I.Rd] + I.Imm, Bits); Flt.Faulted) {
        MemFaultOut(Flt);
        return Res;
      }
      break;
    }
    case Opcode::FITOD:
      F[I.Rd] = static_cast<double>(static_cast<int32_t>(R[I.Rs]));
      break;
    case Opcode::FDTOI: {
      double D = F[I.Rs];
      int32_t V;
      if (std::isnan(D) || D >= 2147483648.0 || D < -2147483648.0)
        V = INT32_MIN; // x86-style saturate-to-indefinite
      else
        V = static_cast<int32_t>(D);
      R[I.Rd] = static_cast<uint32_t>(V);
      break;
    }
    case Opcode::FCMP:
      CCOpVal = static_cast<uint32_t>(CCOp::Copy);
      CCDep1 = fcmpFlags(F[I.Rd], F[I.Rs]);
      CCDep2 = 0;
      break;
    case Opcode::FMOVI:
      std::memcpy(&F[I.Rd], &I.Imm64, 8);
      break;

    case Opcode::VADD8:
      R[I.Rd] = laneAdd8(R[I.Rs], R[I.Rt]);
      break;
    case Opcode::VSUB8:
      R[I.Rd] = laneSub8(R[I.Rs], R[I.Rt]);
      break;
    case Opcode::VCMPGT8:
      R[I.Rd] = laneCmpGT8(R[I.Rs], R[I.Rt]);
      break;
    }

    PC = Next;
    ++Res.InsnsExecuted;
  }
  return Res;
}
