# Empty dependencies file for sec51_codesize.
# This may be replaced when dependencies are built.
