# Empty compiler generated dependencies file for sec39_dispatch.
# This may be replaced when dependencies are built.
