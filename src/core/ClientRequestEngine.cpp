//===-- core/ClientRequestEngine.cpp - Client-request dispatch ------------==//

#include "core/ClientRequestEngine.h"

#include "core/ClientRequests.h"
#include "core/Core.h"

#include <algorithm>

using namespace vg;

void ClientRequestEngine::handle(ThreadState &TS) {
  uint32_t RawCode = TS.gpr(0);
  // Legacy flat core/allocator codes become their canonical tagged
  // equivalents; everything else (tagged, tool-space, unknown) passes
  // through untouched.
  uint32_t Code = vgNormalizeRequest(RawCode);
  uint32_t Args[4] = {TS.gpr(1), TS.gpr(2), TS.gpr(3), TS.gpr(4)};
  uint32_t Result = 0;

  switch (Code) {
  case CrDiscardTranslations:
    C.discardTranslations(Args[0], Args[1]);
    break;
  case CrStackRegister: {
    AltStacks.push_back(RegisteredStack{NextStackId, Args[0], Args[1]});
    Result = NextStackId++;
    break;
  }
  case CrStackDeregister:
    AltStacks.erase(std::remove_if(AltStacks.begin(), AltStacks.end(),
                                   [&](const RegisteredStack &R) {
                                     return R.Id == Args[0];
                                   }),
                    AltStacks.end());
    break;
  case CrStackChange:
    for (RegisteredStack &R : AltStacks) {
      if (R.Id == Args[0]) {
        R.Start = Args[1];
        R.End = Args[2];
      }
    }
    break;
  case CrPrint: {
    std::string S;
    for (uint32_t I = 0; I != 4096; ++I) {
      uint8_t B;
      if (C.Memory.read(Args[0] + I, &B, 1, true).Faulted || B == 0)
        break;
      S.push_back(static_cast<char>(B));
    }
    C.Out.printf("%s", S.c_str());
    break;
  }
  case CrRunningOnValgrind:
    Result = 1;
    break;
  case CrMalloc:
    Result = clientMalloc(TS.Tid, Args[0], /*Zeroed=*/false);
    break;
  case CrFree:
    clientFree(TS.Tid, Args[0]);
    break;
  case CrCalloc: {
    uint64_t Total = static_cast<uint64_t>(Args[0]) * Args[1];
    Result = Total > 0xFFFFFFFFull
                 ? 0
                 : clientMalloc(TS.Tid, static_cast<uint32_t>(Total),
                                /*Zeroed=*/true);
    break;
  }
  case CrRealloc:
    Result = clientRealloc(TS.Tid, Args[0], Args[1]);
    break;
  default:
    // Not a core request: offer the tool the code exactly as the guest
    // issued it (tools service both their tagged namespace and their
    // legacy CrToolBase aliases themselves).
    if (C.ToolPlugin &&
        C.ToolPlugin->handleClientRequest(TS.Tid, RawCode, Args, Result))
      break;
    ++UnknownRequests;
    Result = 0; // unknown requests read as 0, like native CLREQ
    break;
  }
  TS.setGpr(0, Result);
}

int ClientRequestEngine::stackIdOf(uint32_t Addr) const {
  for (const RegisteredStack &R : AltStacks)
    if (Addr >= R.Start && Addr < R.End)
      return static_cast<int>(R.Id);
  return -1;
}

bool ClientRequestEngine::onRegisteredStack(uint32_t Addr) const {
  for (const RegisteredStack &R : AltStacks)
    if (Addr >= R.Start && Addr < R.End)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// The replacement allocator (R8)
//===----------------------------------------------------------------------===//

namespace {
constexpr uint32_t HeapArenaSize = 64u << 20;
constexpr uint32_t HeapChunk = 1u << 20;
uint32_t align16(uint32_t V) { return (V + 15) & ~15u; }
} // namespace

uint32_t ClientRequestEngine::clientMalloc(int Tid, uint32_t Size,
                                           bool Zeroed) {
  if (HeapArenaBase == 0) {
    HeapArenaBase = C.AS.findFree(HeapArenaSize, 0x60000000);
    if (!HeapArenaBase ||
        !C.AS.add(HeapArenaBase, HeapArenaSize, PermRW, SegKind::ClientMmap,
                  "replacement-heap"))
      return 0;
    HeapArenaEnd = HeapArenaBase + HeapArenaSize;
    HeapBump = HeapArenaBase;
    HeapMapped = HeapArenaBase;
  }
  uint32_t RZ = (C.ToolPlugin && C.ToolPlugin->tracksHeap())
                    ? C.ToolPlugin->redzoneBytes()
                    : 0;
  uint32_t RawSize = align16(std::max<uint32_t>(Size, 1) + 2 * RZ);

  uint32_t Raw = 0;
  // First fit over the free list.
  for (size_t I = 0; I != HeapFree.size(); ++I) {
    if (HeapFree[I].second >= RawSize) {
      Raw = HeapFree[I].first;
      if (HeapFree[I].second > RawSize) {
        HeapFree[I].first += RawSize;
        HeapFree[I].second -= RawSize;
      } else {
        HeapFree.erase(HeapFree.begin() + static_cast<long>(I));
      }
      break;
    }
  }
  if (!Raw) {
    if (HeapBump + RawSize > HeapArenaEnd)
      return 0; // arena exhausted
    Raw = HeapBump;
    HeapBump += RawSize;
    while (HeapMapped < HeapBump) {
      C.Memory.map(HeapMapped, HeapChunk, PermRW);
      HeapMapped += HeapChunk;
    }
  }

  uint32_t Payload = Raw + RZ;
  HeapLive[Payload] = Size;
  HeapMeta[Payload] = {Raw, RawSize};
  HeapLiveBytes += Size;
  if (Zeroed) {
    std::vector<uint8_t> Z(Size, 0);
    C.Memory.write(Payload, Z.data(), Size, /*IgnorePerms=*/true);
  }
  if (C.ToolPlugin)
    C.ToolPlugin->onMalloc(Tid, Payload, Size, Zeroed);
  return Payload;
}

bool ClientRequestEngine::clientFree(int Tid, uint32_t Addr) {
  if (Addr == 0)
    return true; // free(NULL)
  auto It = HeapLive.find(Addr);
  if (It == HeapLive.end()) {
    if (C.ToolPlugin)
      C.ToolPlugin->onBadFree(Tid, Addr);
    return false;
  }
  uint32_t Size = It->second;
  if (C.ToolPlugin)
    C.ToolPlugin->onFree(Tid, Addr, Size);
  auto Meta = HeapMeta[Addr];
  HeapFree.push_back(Meta);
  HeapLive.erase(It);
  HeapMeta.erase(Addr);
  HeapLiveBytes -= Size;
  return true;
}

uint32_t ClientRequestEngine::clientRealloc(int Tid, uint32_t Addr,
                                            uint32_t NewSize) {
  if (Addr == 0)
    return clientMalloc(Tid, NewSize, false);
  auto It = HeapLive.find(Addr);
  if (It == HeapLive.end()) {
    if (C.ToolPlugin)
      C.ToolPlugin->onBadFree(Tid, Addr);
    return 0;
  }
  uint32_t OldSize = It->second;
  uint32_t NewAddr = clientMalloc(Tid, NewSize, false);
  if (!NewAddr)
    return 0;
  // Copy the payload (like mremap, tools see onMalloc+onFree; Memcheck's
  // definedness copy rides on its own onMalloc/Free handling plus this
  // byte copy happening through IgnorePerms writes).
  uint32_t N = std::min(OldSize, NewSize);
  std::vector<uint8_t> Tmp(N);
  C.Memory.read(Addr, Tmp.data(), N, true);
  C.Memory.write(NewAddr, Tmp.data(), N, true);
  if (C.Events.CopyMemMremap)
    C.Events.CopyMemMremap(Addr, NewAddr, N);
  clientFree(Tid, Addr);
  return NewAddr;
}

uint32_t ClientRequestEngine::heapBlockSize(uint32_t Addr) const {
  auto It = HeapLive.find(Addr);
  return It == HeapLive.end() ? 0 : It->second;
}
