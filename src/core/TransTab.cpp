//===-- core/TransTab.cpp - Translation storage ---------------------------==//

#include "core/TransTab.h"

#include "support/Hashing.h"

#include <algorithm>

using namespace vg;

TransTab::TransTab(size_t CapacityPow2) {
  assert((CapacityPow2 & (CapacityPow2 - 1)) == 0 &&
         "table capacity must be a power of two");
  Slots.resize(CapacityPow2);
}

size_t TransTab::probeFor(uint32_t Addr) const {
  size_t Mask = Slots.size() - 1;
  size_t Idx = hashAddr(Addr) & Mask;
  size_t FirstTomb = SIZE_MAX;
  for (size_t Step = 0; Step != Slots.size(); ++Step) {
    const Slot &S = Slots[Idx];
    if (S.St == Slot::State::Empty)
      return FirstTomb != SIZE_MAX ? FirstTomb : Idx;
    if (S.St == Slot::State::Tomb) {
      if (FirstTomb == SIZE_MAX)
        FirstTomb = Idx;
    } else if (S.T->Addr == Addr) {
      return Idx;
    }
    Idx = (Idx + 1) & Mask;
  }
  return FirstTomb != SIZE_MAX ? FirstTomb : 0;
}

Translation *TransTab::lookup(uint32_t Addr) {
  ++S.Lookups;
  size_t Idx = probeFor(Addr);
  Slot &Sl = Slots[Idx];
  if (Sl.St == Slot::State::Full && Sl.T->Addr == Addr) {
    ++S.Hits;
    return Sl.T.get();
  }
  return nullptr;
}

Translation *TransTab::insert(std::unique_ptr<Translation> T) {
  if (Count * 10 >= Slots.size() * 8) // > 80% full
    evictChunk();
  T->Seq = NextSeq++;
  T->Blob.Cookie = T.get();
  size_t Idx = probeFor(T->Addr);
  Slot &Sl = Slots[Idx];
  if (Sl.St == Slot::State::Full) {
    // Replacing an existing translation for the same address.
    unchainAllTo(Sl.T.get());
    --Count;
    ++Gen;
  }
  Sl.T = std::move(T);
  Sl.St = Slot::State::Full;
  ++Count;
  ++S.Inserts;
  return Sl.T.get();
}

void TransTab::eraseSlot(size_t Idx) {
  Slot &Sl = Slots[Idx];
  assert(Sl.St == Slot::State::Full && "erasing non-full slot");
  unchainAllTo(Sl.T.get());
  Sl.T.reset();
  Sl.St = Slot::State::Tomb;
  --Count;
  ++Gen;
}

void TransTab::evictChunk() {
  ++S.EvictionRuns;
  // FIFO: find the sequence-number threshold below which 1/8 of the
  // resident translations fall, then evict them.
  std::vector<uint64_t> Seqs;
  Seqs.reserve(Count);
  for (const Slot &Sl : Slots)
    if (Sl.St == Slot::State::Full)
      Seqs.push_back(Sl.T->Seq);
  if (Seqs.empty())
    return;
  size_t N = std::max<size_t>(1, Seqs.size() / 8);
  std::nth_element(Seqs.begin(), Seqs.begin() + (N - 1), Seqs.end());
  uint64_t Threshold = Seqs[N - 1];
  for (size_t I = 0; I != Slots.size(); ++I) {
    if (Slots[I].St == Slot::State::Full && Slots[I].T->Seq <= Threshold) {
      eraseSlot(I);
      ++S.Evicted;
    }
  }
}

unsigned TransTab::invalidateRange(uint32_t Addr, uint32_t Len) {
  uint32_t End = Addr + Len;
  unsigned N = 0;
  for (size_t I = 0; I != Slots.size(); ++I) {
    if (Slots[I].St != Slot::State::Full)
      continue;
    for (auto [Lo, Hi] : Slots[I].T->Extents) {
      if (Lo < End && Addr < Hi) {
        eraseSlot(I);
        ++N;
        ++S.Invalidated;
        break;
      }
    }
  }
  return N;
}

void TransTab::invalidateAll() {
  for (size_t I = 0; I != Slots.size(); ++I)
    if (Slots[I].St == Slot::State::Full)
      eraseSlot(I);
}

void TransTab::unchainAllTo(const Translation *T) {
  for (Slot &Sl : Slots) {
    if (Sl.St != Slot::State::Full)
      continue;
    for (Translation *&C : Sl.T->Chain)
      if (C == T)
        C = nullptr;
  }
}
