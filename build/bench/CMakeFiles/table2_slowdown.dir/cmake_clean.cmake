file(REMOVE_RECURSE
  "CMakeFiles/table2_slowdown.dir/table2_slowdown.cpp.o"
  "CMakeFiles/table2_slowdown.dir/table2_slowdown.cpp.o.d"
  "table2_slowdown"
  "table2_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
