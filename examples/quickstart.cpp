//===-- examples/quickstart.cpp - Hello, Valgrind-repro -------------------==//
///
/// \file
/// The five-minute tour: write a tiny guest program with the assembler API,
/// run it natively, then run it under the core with Memcheck plugged in and
/// watch the tool catch a real bug.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "guestlib/GuestLib.h"
#include "tools/Memcheck.h"

#include <cstdio>

using namespace vg;
using namespace vg::vg1;

int main() {
  // 1. Write a guest program. The guest ISA ("VG1") is a small CISC-ish
  //    machine; the guest library provides crt0, malloc, and print.
  Assembler Code(0x1000);
  Assembler Data(0x100000);
  GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);

  Code.bind(Main);
  Label Msg = Data.boundLabel();
  Data.emitString("hello from the guest!\n");
  Code.movi(Reg::R1, Data.labelAddr(Msg));
  Code.call(Lib.Print);

  // The bug: allocate 8 bytes, then read the *ninth* word... and branch on
  // uninitialised heap memory for good measure.
  Code.movi(Reg::R1, 8);
  Code.call(Lib.Malloc);
  Code.ld(Reg::R2, Reg::R0, 8); // off the end: lands in the red zone
  Code.ld(Reg::R3, Reg::R0, 0); // in bounds, but never initialised
  Code.cmpi(Reg::R3, 0);
  Label L = Code.newLabel();
  Code.beq(L); // branches on uninitialised data
  Code.bind(L);
  Code.movi(Reg::R0, 0);
  Code.ret();

  GuestImage Img =
      GuestImageBuilder().addCode(Code).addData(Data).entry(Entry).build();

  // 2. Run natively (the reference interpreter): fast, but silent about
  //    the bugs.
  RunReport Native = runNative(Img);
  std::printf("--- native run ---\n%s(exit code %d; no diagnostics — "
              "that is the point)\n\n",
              Native.Stdout.c_str(), Native.ExitCode);

  // 3. Run under the core with Memcheck: same program, same output, plus
  //    the bug reports on the tool's side channel.
  Memcheck Tool;
  RunReport Checked = runUnderCore(Img, &Tool);
  std::printf("--- same program under memcheck ---\n%s\n",
              Checked.Stdout.c_str());
  std::printf("%s", Checked.ToolOutput.c_str());
  std::printf("\n(slow-down for this run: the price of bit-precise "
              "definedness tracking)\n");
  return 0;
}
