//===-- core/TranslationService.cpp - Tiered translation service ----------==//

#include "core/TranslationService.h"

#include <chrono>

using namespace vg;

TranslationHost::~TranslationHost() = default;

TranslationService::TranslationService(TranslationHost &Host,
                                       GuestMemory &Memory,
                                       size_t TTCapacityPow2)
    : Host(Host), Memory(Memory), TT(TTCapacityPow2) {}

TranslationService::~TranslationService() { shutdown(); }

double TranslationService::now() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

//===----------------------------------------------------------------------===//
// The synchronous pipeline (the only pipeline when --jit-threads=0)
//===----------------------------------------------------------------------===//

void TranslationService::fillTranslation(Translation &T, uint32_t PC,
                                         bool Hot, TranslatedBlock TB) {
  T.Addr = PC;
  // A trace pipeline marks its result through the disassembly metadata;
  // the extents then span every constituent, so invalidateRange poisoning
  // any one of them evicts the whole trace.
  if (!TB.Meta.TraceEntries.empty()) {
    T.Tier = 2;
    T.TraceEntries = TB.Meta.TraceEntries;
  } else {
    T.Tier = Hot ? 1 : 0;
  }
  T.Blob = std::move(TB.Blob);
  T.Extents = TB.Meta.Extents;
  if (T.Extents.empty())
    T.Extents.push_back({PC, PC + 1}); // NoDecode-at-entry blocks
  T.NumInsns = TB.Meta.NumInsns;
  // vector<atomic<..>> has no assign(); size-construction value-initialises
  // every element (null slots, zero edge counts).
  T.Chain = std::vector<std::atomic<Translation *>>(T.Blob.NumChainSlots);
  T.EdgeExecs = std::vector<std::atomic<uint64_t>>(T.Blob.NumChainSlots);
}

uint64_t TranslationService::hashLive(
    const std::vector<std::pair<uint32_t, uint32_t>> &Extents) const {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (auto [Lo, Hi] : Extents) {
    for (uint32_t A = Lo; A != Hi; ++A) {
      uint8_t B = 0;
      Memory.read(A, &B, 1, /*IgnorePerms=*/true);
      H ^= B;
      H *= 0x100000001b3ULL;
    }
  }
  return H;
}

uint64_t TranslationService::hashSnapshot(
    const GuestMemory::ExecSnapshot &Snap,
    const std::vector<std::pair<uint32_t, uint32_t>> &Extents, bool &Ok) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (auto [Lo, Hi] : Extents) {
    for (uint32_t A = Lo; A != Hi; ++A) {
      uint8_t B = 0;
      if (!Snap.fetch(A, &B, 1)) {
        Ok = false;
        return 0;
      }
      H ^= B;
      H *= 0x100000001b3ULL;
    }
  }
  Ok = true;
  return H;
}

uint64_t TranslationService::cachePrefixHash(uint32_t PC) const {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (uint32_t I = 0; I != 64; ++I) {
    uint8_t B = 0;
    if (Memory.read(PC + I, &B, 1, /*IgnorePerms=*/true).Faulted)
      break;
    H ^= B;
    H *= 0x100000001b3ULL;
  }
  return H;
}

unsigned TranslationService::invalidate(uint32_t Addr, uint32_t Len) {
  if (Cache)
    Cache->poison(Addr, Len);
  else if (Server)
    ServerPoison.poison(Addr, Len);
  if (Server)
    Server->poison(ServerCfg, Addr, Len); // daemon eviction, best-effort
  return TT.invalidateRange(Addr, Len);
}

unsigned TranslationService::invalidateAll() {
  if (Cache)
    Cache->poisonAll();
  else if (Server)
    ServerPoison.poisonAll();
  if (Server)
    Server->poisonAll(ServerCfg); // best-effort
  unsigned N = static_cast<unsigned>(TT.size());
  TT.invalidateAll();
  return N;
}

TransCache::LoadResult
TranslationService::loadFromServer(uint64_t Key, TransCacheEntry &E,
                                   std::vector<uint8_t> &Image,
                                   bool &FromServer) {
  double T0 = now();
  ++JS.ServerRequests;
  TransServerClient::CallStats CS;
  TransServerClient::FetchResult FR = Server->get(ServerCfg, Key, Image, &CS);
  JS.ServerRetries += CS.Retries;
  JS.ServerTimeouts += CS.Timeouts;
  JS.ServerFetchSeconds += now() - T0;
  switch (FR) {
  case TransServerClient::FetchResult::Failed:
    // Timeout / EOF / malformed frame / dead-latched daemon: the ladder's
    // degrade rung. Indistinguishable from a miss above here — the caller
    // falls through to the inline pipeline, never stalls.
    ++JS.ServerFallbacks;
    return TransCache::LoadResult::NotFound;
  case TransServerClient::FetchResult::Miss:
    ++JS.ServerMisses;
    return TransCache::LoadResult::NotFound;
  case TransServerClient::FetchResult::Hit:
    break;
  }
  FromServer = true;
  JS.ServerBytesFetched += Image.size();
  // The socket adds no trust: the image runs through exactly the decode a
  // local --tt-cache file gets (header, checksum, callee resolution), and
  // the caller still applies the live-hash and poison gauntlet on top.
  return TransCache::decodeEntryFile(Image, ServerCfg, Key, E,
                                     /*ResolveCallees=*/true);
}

Translation *
TranslationService::installFromCache(std::unique_ptr<Translation> &TPtr,
                                     uint64_t Key, uint32_t PC, bool Hot,
                                     bool Promotion) {
  double T0 = now();
  TransCacheEntry E;
  TransCache::LoadResult R = TransCache::LoadResult::NotFound;
  if (Cache)
    R = Cache->load(Key, E);
  // The daemon is strictly behind the local cache: consulted only when no
  // local entry exists at all (a local Malformed entry is a reject, not a
  // licence to try the network).
  bool FromServer = false;
  std::vector<uint8_t> ServerImage;
  if (R == TransCache::LoadResult::NotFound && Server)
    R = loadFromServer(Key, E, ServerImage, FromServer);
  if (R == TransCache::LoadResult::NotFound) {
    ++JS.CacheMisses;
    JS.CacheLoadSeconds += now() - T0;
    return nullptr;
  }
  // Found entries still run the gauntlet the async install path defined:
  // the live guest bytes must hash to what the entry was translated from,
  // and no same-run invalidation (redirect/unmap/flush) may have poisoned
  // the range. Anything else is a reject — fall through to the pipeline.
  if (R == TransCache::LoadResult::Malformed || E.Addr != PC ||
      E.Tier != (Hot ? 1 : 0) || E.Extents.empty() ||
      hashLive(E.Extents) != E.CodeHash || poisonedExtents(E.Extents)) {
    ++JS.CacheRejects;
    if (FromServer)
      ++JS.ServerRejects;
    JS.CacheLoadSeconds += now() - T0;
    return nullptr;
  }
  if (FromServer) {
    ++JS.ServerHits;
    // Write-through AFTER the full gauntlet passed, using the pristine
    // file image (decode patches callee indexes to live pointers in its
    // own copy; the image on disk must keep the indexes).
    if (Cache)
      Cache->storeFile(Key, ServerImage);
  }

  Translation *Raw = TPtr.get();
  Raw->Addr = PC;
  Raw->Tier = Hot ? 1 : 0;
  Raw->Extents = std::move(E.Extents);
  Raw->CodeHash = E.CodeHash;
  Raw->NumInsns = E.NumInsns;
  Raw->Blob.Bytes = std::move(E.Bytes);
  Raw->Blob.NumSpillSlots = E.NumSpillSlots;
  Raw->Blob.NumChainSlots = E.NumChainSlots;
  Raw->Blob.ChainTargets = std::move(E.ChainTargets);
  Raw->Chain = std::vector<std::atomic<Translation *>>(Raw->Blob.NumChainSlots);
  Raw->EdgeExecs = std::vector<std::atomic<uint64_t>>(Raw->Blob.NumChainSlots);

  ++JS.CacheHits;
  double Seconds = now() - T0;
  JS.CacheLoadSeconds += Seconds;
  uint64_t GenBefore = TT.generation();
  Host.noteTranslation(PC, *Raw, Seconds);
  Translation *NT = TT.insert(std::move(TPtr));
  if (Promotion) {
    NT->PromoPending = false;
    Host.promotionInstalled(NT, GenBefore);
  }
  return NT;
}

void TranslationService::writeBackToCache(uint64_t Key, const Translation &T) {
  double T0 = now();
  TransCacheEntry E;
  E.Addr = T.Addr;
  E.Tier = T.Tier;
  E.NumInsns = T.NumInsns;
  E.CodeHash = T.CodeHash;
  E.Extents = T.Extents;
  E.NumSpillSlots = T.Blob.NumSpillSlots;
  E.NumChainSlots = T.Blob.NumChainSlots;
  E.ChainTargets = T.Blob.ChainTargets;
  E.Bytes = T.Blob.Bytes;
  // One encode feeds both sinks: the local cache file and the daemon PUT
  // carry byte-identical images, so a future client fetching this entry
  // re-validates exactly what a local warm run would read.
  uint64_t CH = Cache ? Cache->configHashValue() : ServerCfg;
  std::vector<uint8_t> File;
  if (!TransCache::encodeEntryFile(CH, Key, E, File)) {
    if (Cache)
      Cache->noteWriteFailure();
    JS.CacheStoreSeconds += now() - T0;
    return;
  }
  if (Cache && Cache->storeFile(Key, File))
    ++JS.CacheWrites;
  if (Server) {
    TransServerClient::CallStats CS;
    bool Ok = Server->put(ServerCfg, Key, File, &CS);
    JS.ServerRetries += CS.Retries;
    JS.ServerTimeouts += CS.Timeouts;
    if (Ok) {
      ++JS.ServerWrites;
      JS.ServerBytesSent += File.size();
    }
  }
  JS.CacheStoreSeconds += now() - T0;
}

Translation *TranslationService::translateSync(uint32_t PC, bool Hot) {
  auto TPtr = std::make_unique<Translation>();
  Translation *Raw = TPtr.get();

  TranslationOptions TO;
  Host.setupTranslation(TO, PC, Hot, Raw);

  // The persistent cache sits in front of the pipeline. Eligibility
  // (Raw->Cacheable) was just decided by setupTranslation on this thread,
  // so position-dependent blobs (SMC prelude) never consult the disk.
  uint64_t Key = 0;
  bool UseCache = (Cache || Server) && Raw->Cacheable;
  if (UseCache) {
    Key = TransCache::entryKey(PC, Hot, cachePrefixHash(PC));
    if (Translation *T = installFromCache(TPtr, Key, PC, Hot,
                                          /*Promotion=*/false))
      return T;
  }

  FetchFn Fetch = [this](uint32_t Addr, uint8_t *Buf,
                         uint32_t MaxLen) -> uint32_t {
    uint32_t N = 0;
    while (N < MaxLen && !Memory.fetch(Addr + N, Buf + N, 1).Faulted)
      ++N;
    return N;
  };

  // Timed unconditionally (not just under --profile): CoreStats carries
  // the total so the warm-start bench can compare pipeline time against
  // cache-load time. Two clock reads per translation is noise next to the
  // eight-phase pipeline they bracket.
  double T0 = now();
  TranslatedBlock TB = translateBlock(PC, Fetch, TO);
  fillTranslation(*Raw, PC, Hot, std::move(TB));
  Raw->CodeHash = hashLive(Raw->Extents);
  Host.noteTranslation(PC, *Raw, now() - T0);
  Translation *Res = TT.insert(std::move(TPtr));
  if (UseCache && !poisonedExtents(Res->Extents))
    writeBackToCache(Key, *Res);
  return Res;
}

Translation *TranslationService::translateTrace(const TraceSpec &Spec) {
  auto TPtr = std::make_unique<Translation>();
  Translation *Raw = TPtr.get();
  uint32_t PC = Spec.Entries.at(0);

  TranslationOptions TO;
  // The spec must be pinned before setupTranslation: the host scales the
  // frontend limits off it, forces Cacheable off, and binds the seam list
  // into the instrument hook (per-seam SMC checks).
  TO.Trace = Spec;
  ir::TraceOptStats TS;
  TO.TraceStats = &TS;
  Host.setupTranslation(TO, PC, /*Hot=*/true, Raw);
  ++JS.TraceRequests;

  FetchFn Fetch = [this](uint32_t Addr, uint8_t *Buf,
                         uint32_t MaxLen) -> uint32_t {
    uint32_t N = 0;
    while (N < MaxLen && !Memory.fetch(Addr + N, Buf + N, 1).Faulted)
      ++N;
    return N;
  };

  double T0 = now();
  TranslatedBlock TB = translateBlock(PC, Fetch, TO);
  if (TB.SpillOverflow) {
    ++JS.TraceAborts;
    return nullptr; // keep running the constituent tier-1 blocks
  }
  fillTranslation(*Raw, PC, /*Hot=*/true, std::move(TB));
  Raw->CodeHash = hashLive(Raw->Extents);
  Host.noteTranslation(PC, *Raw, now() - T0);
  JS.TraceDeadFlagPuts += TS.DeadFlagPuts;
  JS.TraceProbesCSEd += TS.ProbesCSEd;
  uint64_t GenBefore = TT.generation();
  Translation *Res = TT.insert(std::move(TPtr));
  ++JS.TraceInstalled;
  Host.promotionInstalled(Res, GenBefore);
  return Res;
}

Translation *TranslationService::promoteFromCache(uint32_t PC) {
  if (!Cache && !Server)
    return nullptr;
  auto TPtr = std::make_unique<Translation>();
  TranslationOptions TO;
  Host.setupTranslation(TO, PC, /*Hot=*/true, TPtr.get());
  if (!TPtr->Cacheable)
    return nullptr;
  uint64_t Key = TransCache::entryKey(PC, /*Hot=*/true, cachePrefixHash(PC));
  return installFromCache(TPtr, Key, PC, /*Hot=*/true, /*Promotion=*/true);
}

//===----------------------------------------------------------------------===//
// The asynchronous promotion pipeline
//===----------------------------------------------------------------------===//

void TranslationService::configure(unsigned Threads, unsigned Depth) {
  if (Threads == 0 || !Workers.empty())
    return;
  QueueDepth = Depth ? Depth : 1;
  Workers.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I) {
    try {
      Workers.emplace_back([this] { workerMain(); });
    } catch (...) {
      break; // keep whatever workers did start
    }
  }
  NumThreads = static_cast<unsigned>(Workers.size());
}

void TranslationService::shutdown() {
  if (Stopped)
    return;
  Stopped = true;
  if (Workers.empty())
    return;
  {
    std::lock_guard<std::mutex> L(QueueMu);
    Stop = true;
  }
  QueueCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
  Workers.clear();
  // Whatever never made it into the table is abandoned: jobs still queued,
  // plus completed jobs nobody will drain. (Workers pushed their final
  // jobs to the done list before joining, so the two buckets are exact.)
  JS.AsyncAbandoned += Queue.size();
  Queue.clear();
  {
    std::lock_guard<std::mutex> L(DoneMu);
    JS.AsyncAbandoned += Done.size();
    Done.clear();
    DoneCount.store(0, std::memory_order_relaxed);
  }
}

std::shared_ptr<const GuestMemory::ExecSnapshot>
TranslationService::snapshotForEpoch(uint32_t Addr, uint64_t Epoch) {
  // Rebuild when the epoch moved or the block lives in exec pages mapped
  // after the cached snapshot was taken (same epoch — a plain mmap
  // invalidates nothing).
  uint8_t Probe = 0;
  if (!SnapCache || SnapCacheEpoch != Epoch ||
      !SnapCache->fetch(Addr, &Probe, 1)) {
    SnapCache = std::make_shared<GuestMemory::ExecSnapshot>(
        Memory.snapshotExecRanges());
    SnapCacheEpoch = Epoch;
  }
  return SnapCache;
}

bool TranslationService::submitJob(std::unique_ptr<Job> J, Translation *Cur,
                                   double T0) {
  {
    std::lock_guard<std::mutex> L(QueueMu);
    if (Stop)
      return false;
    if (Queue.size() >= QueueDepth) {
      ++JS.QueueFullFallbacks;
      return false; // backpressure: caller promotes inline
    }
    Queue.push_back(std::move(J));
    JS.QueueHighWater =
        std::max<uint64_t>(JS.QueueHighWater, Queue.size());
  }
  QueueCV.notify_one();
  Cur->PromoPending = true;
  ++JS.AsyncRequests;
  JS.EnqueueSeconds += now() - T0;
  return true;
}

bool TranslationService::enqueuePromotion(Translation *Cur) {
  if (!asyncEnabled())
    return false;
  double T0 = now();

  auto J = std::make_unique<Job>();
  J->Addr = Cur->Addr;
  J->EnqueueTime = T0;
  J->EpochAtEnqueue = TT.flushEpoch();
  J->Snap = snapshotForEpoch(Cur->Addr, J->EpochAtEnqueue);
  J->Result = std::make_unique<Translation>();
  // Pin everything guest-thread-dependent now: options, the SMC policy
  // sampled inside the instrument hook, the per-tool lock.
  Host.setupTranslation(J->TO, Cur->Addr, /*Hot=*/true, J->Result.get());
  J->TO.Prof = nullptr; // the Profiler is guest-thread-only
  J->TO.PhaseOut = &J->Phases;
  J->TO.InstrumentLock = &InstrLock;
  return submitJob(std::move(J), Cur, T0);
}

bool TranslationService::enqueueTrace(Translation *Cur,
                                      const TraceSpec &Spec) {
  if (!asyncEnabled())
    return false;
  double T0 = now();

  auto J = std::make_unique<Job>();
  J->Addr = Cur->Addr;
  J->EnqueueTime = T0;
  J->EpochAtEnqueue = TT.flushEpoch();
  J->Snap = snapshotForEpoch(Cur->Addr, J->EpochAtEnqueue);
  J->Result = std::make_unique<Translation>();
  // The spec goes in BEFORE setupTranslation so the host can scale the
  // frontend limits, force Cacheable off, and capture the seam list for
  // the per-seam SMC checks — all on the guest thread.
  J->TO.Trace = Spec;
  J->TO.TraceStats = &J->TraceStats; // Job outlives the pipeline
  Host.setupTranslation(J->TO, Cur->Addr, /*Hot=*/true, J->Result.get());
  J->TO.Prof = nullptr;
  J->TO.PhaseOut = &J->Phases;
  J->TO.InstrumentLock = &InstrLock;
  if (!submitJob(std::move(J), Cur, T0))
    return false;
  ++JS.TraceRequests;
  return true;
}

void TranslationService::workerMain() {
  for (;;) {
    std::unique_ptr<Job> J;
    {
      std::unique_lock<std::mutex> L(QueueMu);
      QueueCV.wait(L, [this] { return Stop || !Queue.empty(); });
      if (Stop)
        return; // remaining jobs are counted abandoned by shutdown()
      J = std::move(Queue.front());
      Queue.pop_front();
      ++InFlight;
    }
    runJob(*J);
    {
      std::lock_guard<std::mutex> L(DoneMu);
      Done.push_back(std::move(J));
    }
    DoneCount.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> L(QueueMu);
      --InFlight;
    }
    QueueCV.notify_all(); // waitIdle watches InFlight
  }
}

void TranslationService::runJob(Job &J) {
  try {
    const GuestMemory::ExecSnapshot &Snap = *J.Snap;
    FetchFn Fetch = [&Snap](uint32_t Addr, uint8_t *Buf,
                            uint32_t MaxLen) -> uint32_t {
      uint32_t N = 0;
      while (N < MaxLen && Snap.fetch(Addr + N, Buf + N, 1))
        ++N;
      return N;
    };
    double T0 = now();
    TranslatedBlock TB = translateBlock(J.Addr, Fetch, J.TO);
    J.TranslateSeconds = now() - T0;
    if (TB.SpillOverflow) {
      // A stitched path outgrew the executor frame. Legitimate outcome,
      // not a bug: settle the job as failed so the head stays tier-1.
      J.SpillOverflow = true;
      J.Failed = true;
      return;
    }
    fillTranslation(*J.Result, J.Addr, /*Hot=*/true, std::move(TB));
    bool Ok = false;
    J.Result->CodeHash = hashSnapshot(Snap, J.Result->Extents, Ok);
    J.Failed = !Ok;
  } catch (...) {
    J.Failed = true;
  }
}

unsigned TranslationService::drainCompleted() {
  std::vector<std::unique_ptr<Job>> Batch;
  {
    std::lock_guard<std::mutex> L(DoneMu);
    Batch.swap(Done);
    DoneCount.store(0, std::memory_order_relaxed);
  }

  unsigned Installed = 0;
  for (std::unique_ptr<Job> &J : Batch) {
    const bool IsTrace = !J->TO.Trace.Entries.empty();
    // The promotion request is settled either way: let the block become
    // hot again if this job dies below.
    if (Translation *Cur = TT.find(J->Addr))
      Cur->PromoPending = false;
    Host.mergePhaseTimes(J->Phases);
    if (J->Failed) {
      ++JS.WorkerFailures;
      if (IsTrace) {
        ++JS.TraceAborts;
        // Back off: don't re-stitch the same head until it has run twice
        // as long again (the chain graph that produced an overflowing or
        // untranslatable path is unlikely to shrink soon).
        if (Translation *Cur = TT.find(J->Addr))
          if (Cur->Tier == 1)
            Cur->TraceRetryAt = Cur->ExecCount * 2;
      }
      continue;
    }
    ++JS.AsyncCompleted;
    if (J->EpochAtEnqueue != TT.flushEpoch()) {
      // A flush/invalidation ran since enqueue. The bytes might still
      // hash equal (redirects rewrite meaning, not memory), so the hash
      // check below would be insufficient: discard outright.
      ++JS.AsyncDiscardedEpoch;
      continue;
    }
    if (hashLive(J->Result->Extents) != J->Result->CodeHash) {
      ++JS.AsyncDiscardedStale; // SMC since the snapshot
      continue;
    }
    uint64_t GenBefore = TT.generation();
    double T1 = now();
    Translation *NT = TT.insert(std::move(J->Result));
    NT->PromoPending = false;
    ++JS.AsyncInstalled;
    if (IsTrace) {
      ++JS.TraceInstalled;
      JS.TraceDeadFlagPuts += J->TraceStats.DeadFlagPuts;
      JS.TraceProbesCSEd += J->TraceStats.ProbesCSEd;
    }
    JS.InstallLatencySeconds += T1 - J->EnqueueTime;
    Host.noteTranslation(NT->Addr, *NT, J->TranslateSeconds);
    Host.promotionInstalled(NT, GenBefore);
    ++Installed;
    // Persist the freshly-installed superblock. The live-hash check just
    // passed, so a key derived from live bytes matches what a future
    // lookup (which also reads live bytes) will compute.
    if ((Cache || Server) && NT->Cacheable && !poisonedExtents(NT->Extents))
      writeBackToCache(
          TransCache::entryKey(NT->Addr, /*Hot=*/true, cachePrefixHash(NT->Addr)),
          *NT);
  }
  return Installed;
}

void TranslationService::waitIdle() {
  if (Workers.empty())
    return;
  std::unique_lock<std::mutex> L(QueueMu);
  QueueCV.wait(L, [this] { return Queue.empty() && InFlight == 0; });
}
