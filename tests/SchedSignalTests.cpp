//===-- tests/SchedSignalTests.cpp - Scheduler/signal hardening tests -----==//
///
/// \file
/// Tests for the Sections 3.14/3.15 hardening pass: deterministic fault
/// injection and event tracing, per-signal masking (no handler
/// re-entry), signal delivery around syscalls, SP-moving handlers under
/// stack instrumentation, pending-signal disposal at thread exit, and
/// stray-sigreturn reporting.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "guestlib/GuestLib.h"
#include "kernel/SimKernel.h"
#include "tools/Memcheck.h"
#include "tools/Nulgrind.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <string>

using namespace vg;
using namespace vg::vg1;

namespace {

constexpr uint32_t CodeBase = 0x1000;
constexpr uint32_t DataBase = 0x100000;

GuestImage buildProgram(
    const std::function<void(Assembler &, Assembler &, GuestLibLabels &)>
        &Body) {
  Assembler Code(CodeBase);
  Assembler Data(DataBase);
  GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);
  Code.bind(Main);
  Code.symbol("main");
  Body(Code, Data, Lib);
  return GuestImageBuilder()
      .addCode(Code)
      .addData(Data)
      .entry(Entry)
      .build();
}

/// The "=== event trace ... ===" block of a run's tool output.
std::string extractTrace(const std::string &Output) {
  size_t Begin = Output.find("=== event trace");
  if (Begin == std::string::npos)
    return "";
  const char *EndMark = "=== end event trace ===";
  size_t End = Output.find(EndMark, Begin);
  if (End == std::string::npos)
    return "";
  return Output.substr(Begin, End + std::string(EndMark).size() - Begin);
}

/// True if some line of \p Trace contains both \p A and \p B.
bool hasRecordWith(const std::string &Trace, const std::string &A,
                   const std::string &B) {
  size_t Pos = 0;
  while (Pos < Trace.size()) {
    size_t Eol = Trace.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Trace.size();
    std::string Line = Trace.substr(Pos, Eol - Pos);
    if (Line.find(A) != std::string::npos &&
        Line.find(B) != std::string::npos)
      return true;
    Pos = Eol + 1;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Deterministic replay (the tentpole's headline property)
//===----------------------------------------------------------------------===//

TEST(SchedSignal, SameSeedReplaysByteIdenticalTrace) {
  GuestImage Img = buildWorkload("sigmt", 1);
  std::vector<std::string> Opts = {"--fault-inject=all,seed=5",
                                   "--trace-events=yes", "--trace-dump=yes"};
  Nulgrind T1, T2, T3;
  RunReport A = runUnderCore(Img, &T1, Opts);
  RunReport B = runUnderCore(Img, &T2, Opts);
  ASSERT_TRUE(A.Completed);
  ASSERT_TRUE(B.Completed);
  EXPECT_EQ(A.ExitCode, 0);
  std::string TA = extractTrace(A.ToolOutput);
  std::string TB = extractTrace(B.ToolOutput);
  ASSERT_FALSE(TA.empty());
  EXPECT_EQ(TA, TB) << "same seed must replay byte-identically";

  RunReport C = runUnderCore(Img, &T3,
                             {"--fault-inject=all,seed=6",
                              "--trace-events=yes", "--trace-dump=yes"});
  ASSERT_TRUE(C.Completed);
  EXPECT_NE(TA, extractTrace(C.ToolOutput))
      << "different seeds should take different paths";
}

//===----------------------------------------------------------------------===//
// Per-signal masking: a handler is never re-entered for its own signal,
// but a different signal may nest inside it.
//===----------------------------------------------------------------------===//

TEST(SchedSignal, MaskedSignalQueuesInsteadOfReentering) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &) {
    Label H1 = Code.newLabel(), H2 = Code.newLabel();
    Label D1 = Data.boundLabel();
    Data.emitZeros(4); // depth inside H1
    Label MaxD1 = Data.boundLabel();
    Data.emitZeros(4);
    Label DAll = Data.boundLabel();
    Data.emitZeros(4); // depth inside any handler
    Label MaxAll = Data.boundLabel();
    Data.emitZeros(4);
    Label Runs1 = Data.boundLabel();
    Data.emitZeros(4);
    Label Runs2 = Data.boundLabel();
    Data.emitZeros(4);
    Label H2Done = Data.boundLabel();
    Data.emitZeros(4);
    uint32_t D1A = Data.labelAddr(D1), MaxD1A = Data.labelAddr(MaxD1);
    uint32_t DAllA = Data.labelAddr(DAll), MaxAllA = Data.labelAddr(MaxAll);
    uint32_t Runs1A = Data.labelAddr(Runs1), Runs2A = Data.labelAddr(Runs2);
    uint32_t H2DoneA = Data.labelAddr(H2Done);

    // counter++ at Addr; optionally track the max in MaxAddr.
    auto bump = [&](uint32_t Addr, int Delta, uint32_t MaxAddr = 0) {
      Code.movi(Reg::R3, Addr);
      Code.ld(Reg::R4, Reg::R3, 0);
      Code.addi(Reg::R4, Reg::R4, Delta);
      Code.st(Reg::R3, 0, Reg::R4);
      if (MaxAddr) {
        Label NoMax = Code.newLabel();
        Code.movi(Reg::R3, MaxAddr);
        Code.ld(Reg::R5, Reg::R3, 0);
        Code.cmp(Reg::R4, Reg::R5);
        Code.ble(NoMax);
        Code.st(Reg::R3, 0, Reg::R4);
        Code.bind(NoMax);
      }
    };
    auto kill = [&](int Sig) {
      Code.movi(Reg::R0, SysKill);
      Code.movi(Reg::R1, 0); // main thread
      Code.movi(Reg::R2, static_cast<uint32_t>(Sig));
      Code.sys();
    };

    // main: install both handlers, raise USR1, wait for three H1 runs.
    Code.movi(Reg::R0, SysSigaction);
    Code.movi(Reg::R1, SigUSR1);
    Code.leai(Reg::R2, H1);
    Code.sys();
    Code.movi(Reg::R0, SysSigaction);
    Code.movi(Reg::R1, SigUSR2);
    Code.leai(Reg::R2, H2);
    Code.sys();
    kill(SigUSR1);
    Label Wait = Code.boundLabel();
    Code.movi(Reg::R3, Runs1A);
    Code.ld(Reg::R4, Reg::R3, 0);
    Code.cmpi(Reg::R4, 3);
    Code.blt(Wait);
    // exit code = MaxD1*1000 + MaxAll*100 + Runs1*10 + Runs2
    Code.movi(Reg::R3, MaxD1A);
    Code.ld(Reg::R4, Reg::R3, 0);
    Code.movi(Reg::R5, 1000);
    Code.mul(Reg::R0, Reg::R4, Reg::R5);
    Code.movi(Reg::R3, MaxAllA);
    Code.ld(Reg::R4, Reg::R3, 0);
    Code.movi(Reg::R5, 100);
    Code.mul(Reg::R4, Reg::R4, Reg::R5);
    Code.add(Reg::R0, Reg::R0, Reg::R4);
    Code.movi(Reg::R3, Runs1A);
    Code.ld(Reg::R4, Reg::R3, 0);
    Code.movi(Reg::R5, 10);
    Code.mul(Reg::R4, Reg::R4, Reg::R5);
    Code.add(Reg::R0, Reg::R0, Reg::R4);
    Code.movi(Reg::R3, Runs2A);
    Code.ld(Reg::R4, Reg::R3, 0);
    Code.add(Reg::R0, Reg::R0, Reg::R4);
    Code.ret();

    // H1 (SIGUSR1): while it runs, USR1 is masked; USR2 may nest.
    Code.bind(H1);
    bump(D1A, 1, MaxD1A);
    bump(DAllA, 1, MaxAllA);
    bump(Runs1A, 1);
    Code.movi(Reg::R3, H2DoneA);
    Code.movi(Reg::R4, 0);
    Code.st(Reg::R3, 0, Reg::R4);
    kill(SigUSR2); // nests into H2 while H1 is live
    Label WaitH2 = Code.boundLabel();
    Code.movi(Reg::R3, H2DoneA);
    Code.ld(Reg::R4, Reg::R3, 0);
    Code.cmpi(Reg::R4, 0);
    Code.beq(WaitH2);
    // Re-raise our own (masked) signal while under 3 runs: it must queue,
    // not re-enter -- MaxD1 stays 1.
    Code.movi(Reg::R3, Runs1A);
    Code.ld(Reg::R4, Reg::R3, 0);
    Code.cmpi(Reg::R4, 3);
    Label NoReraise = Code.newLabel();
    Code.bge(NoReraise);
    kill(SigUSR1);
    Code.bind(NoReraise);
    bump(D1A, -1);
    bump(DAllA, -1);
    Code.ret();

    // H2 (SIGUSR2): proves different-signal nesting still works.
    Code.bind(H2);
    bump(DAllA, 1, MaxAllA);
    bump(Runs2A, 1);
    Code.movi(Reg::R3, H2DoneA);
    Code.movi(Reg::R4, 1);
    Code.st(Reg::R3, 0, Reg::R4);
    bump(DAllA, -1);
    Code.ret();
  });
  Nulgrind T;
  RunReport R = runUnderCore(Img, &T);
  ASSERT_TRUE(R.Completed);
  // MaxD1=1 (never re-entered), MaxAll=2 (H2 nested in H1), 3 runs each.
  EXPECT_EQ(R.ExitCode, 1233);
  EXPECT_EQ(R.Stats.SignalsDelivered, 6u);
}

//===----------------------------------------------------------------------===//
// Signal queued while the target is off-CPU (in/around syscalls) is
// delivered when it next reaches a block boundary.
//===----------------------------------------------------------------------===//

TEST(SchedSignal, SignalRaisedByPeerInterruptsSleepLoop) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &) {
    Label Handler = Code.newLabel(), Child = Code.newLabel();
    Label Flag = Data.boundLabel();
    Data.emitZeros(4);
    uint32_t FlagA = Data.labelAddr(Flag);
    // install handler
    Code.movi(Reg::R0, SysSigaction);
    Code.movi(Reg::R1, SigUSR1);
    Code.leai(Reg::R2, Handler);
    Code.sys();
    // spawn the child
    Code.movi(Reg::R0, SysMmap);
    Code.movi(Reg::R1, 0);
    Code.movi(Reg::R2, 65536);
    Code.movi(Reg::R3, 3);
    Code.movi(Reg::R4, 0);
    Code.sys();
    Code.addi(Reg::R2, Reg::R0, 65536);
    Code.movi(Reg::R0, SysClone);
    Code.leai(Reg::R1, Child);
    Code.movi(Reg::R3, 0);
    Code.sys();
    // sleep in a loop until the handler sets the flag
    Label Sleep = Code.boundLabel();
    Code.movi(Reg::R3, FlagA);
    Code.ld(Reg::R4, Reg::R3, 0);
    Code.cmpi(Reg::R4, 0);
    Label Done = Code.newLabel();
    Code.bne(Done);
    Code.movi(Reg::R0, SysNanosleep);
    Code.movi(Reg::R1, 5);
    Code.sys();
    Code.jmp(Sleep);
    Code.bind(Done);
    Code.movi(Reg::R0, 0);
    Code.ret();
    // handler: flag = 1
    Code.bind(Handler);
    Code.movi(Reg::R3, FlagA);
    Code.movi(Reg::R4, 1);
    Code.st(Reg::R3, 0, Reg::R4);
    Code.ret();
    // child: signal the sleeping main thread, then exit
    Code.bind(Child);
    Code.movi(Reg::R0, SysKill);
    Code.movi(Reg::R1, 0);
    Code.movi(Reg::R2, SigUSR1);
    Code.sys();
    Code.movi(Reg::R0, SysExitThread);
    Code.movi(Reg::R1, 0);
    Code.sys();
  });
  Nulgrind T;
  RunReport R = runUnderCore(Img, &T);
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_GE(R.Stats.SignalsDelivered, 1u);
}

//===----------------------------------------------------------------------===//
// A handler that moves SP must behave under stack instrumentation (the
// R7 events forced on by --trace-events, and Memcheck's own).
//===----------------------------------------------------------------------===//

TEST(SchedSignal, HandlerMovesSPUnderStackEventsAndMemcheck) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &) {
    Label Handler = Code.newLabel();
    Label Result = Data.boundLabel();
    Data.emitZeros(4);
    uint32_t ResultA = Data.labelAddr(Result);
    Code.movi(Reg::R0, SysSigaction);
    Code.movi(Reg::R1, SigUSR1);
    Code.leai(Reg::R2, Handler);
    Code.sys();
    Code.movi(Reg::R6, 23130); // 0x5A5A, round-trips via handler stack
    Code.movi(Reg::R0, SysKill);
    Code.movi(Reg::R1, 0);
    Code.movi(Reg::R2, SigUSR1);
    Code.sys();
    Label Wait = Code.boundLabel();
    Code.movi(Reg::R3, ResultA);
    Code.ld(Reg::R4, Reg::R3, 0);
    Code.cmpi(Reg::R4, 0);
    Code.beq(Wait);
    Code.mov(Reg::R0, Reg::R4);
    Code.ret();
    // handler: carve a 64-byte frame, bounce the value through it.
    Code.bind(Handler);
    Code.addi(Reg::R14, Reg::R14, -64);
    Code.st(Reg::R14, 0, Reg::R6);
    Code.ld(Reg::R4, Reg::R14, 0);
    Code.movi(Reg::R3, ResultA);
    Code.st(Reg::R3, 0, Reg::R4);
    Code.addi(Reg::R14, Reg::R14, 64);
    Code.ret();
  });
  Memcheck T;
  RunReport R = runUnderCore(Img, &T, {"--trace-events=yes"});
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 23130);
  EXPECT_NE(R.ToolOutput.find("ERROR SUMMARY: 0 error"), std::string::npos)
      << R.ToolOutput;
}

//===----------------------------------------------------------------------===//
// Thread exit with pending signals: they are dropped (and traced), never
// delivered to a dead thread.
//===----------------------------------------------------------------------===//

TEST(SchedSignal, ThreadExitDropsPendingSignals) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &) {
    Label Handler = Code.newLabel(), Child = Code.newLabel();
    Label CTid = Data.boundLabel();
    Data.emitZeros(4);
    uint32_t CTidA = Data.labelAddr(CTid);
    Code.movi(Reg::R0, SysSigaction);
    Code.movi(Reg::R1, SigUSR1);
    Code.leai(Reg::R2, Handler);
    Code.sys();
    Code.movi(Reg::R0, SysMmap);
    Code.movi(Reg::R1, 0);
    Code.movi(Reg::R2, 65536);
    Code.movi(Reg::R3, 3);
    Code.movi(Reg::R4, 0);
    Code.sys();
    Code.addi(Reg::R2, Reg::R0, 65536);
    Code.movi(Reg::R0, SysClone);
    Code.leai(Reg::R1, Child);
    Code.movi(Reg::R3, 0);
    Code.sys();
    Code.movi(Reg::R3, CTidA);
    Code.st(Reg::R3, 0, Reg::R0); // publish the child's tid
    // keep signalling the child until the kernel says it is gone
    Label MLoop = Code.boundLabel();
    Code.movi(Reg::R3, CTidA);
    Code.ld(Reg::R1, Reg::R3, 0);
    Code.movi(Reg::R0, SysKill);
    Code.movi(Reg::R2, SigUSR1);
    Code.sys();
    Code.cmpi(Reg::R0, -1);
    Label Done = Code.newLabel();
    Code.beq(Done); // exited/empty target is rejected, not queued
    Code.movi(Reg::R0, SysYield);
    Code.sys();
    Code.jmp(MLoop);
    Code.bind(Done);
    Code.movi(Reg::R0, 0);
    Code.ret();
    // handler (runs on the child): queue another USR1 at ourselves while
    // it is masked, then exit the thread with it still pending.
    Code.bind(Handler);
    Code.movi(Reg::R3, CTidA);
    Code.ld(Reg::R1, Reg::R3, 0);
    Code.movi(Reg::R0, SysKill);
    Code.movi(Reg::R2, SigUSR1);
    Code.sys();
    Code.movi(Reg::R0, SysExitThread);
    Code.movi(Reg::R1, 0);
    Code.sys();
    // child: wait for our tid, poke ourselves once, then spin until the
    // handler fires and exits us.
    Code.bind(Child);
    Label WaitTid = Code.boundLabel();
    Code.movi(Reg::R3, CTidA);
    Code.ld(Reg::R4, Reg::R3, 0);
    Code.cmpi(Reg::R4, 0);
    Code.beq(WaitTid);
    Code.mov(Reg::R1, Reg::R4);
    Code.movi(Reg::R0, SysKill);
    Code.movi(Reg::R2, SigUSR1);
    Code.sys();
    Label Spin = Code.boundLabel();
    Code.movi(Reg::R0, SysYield);
    Code.sys();
    Code.jmp(Spin);
  });
  Nulgrind T;
  RunReport R = runUnderCore(Img, &T, {"--trace-events=yes",
                                       "--trace-dump=yes"});
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_GE(R.Stats.SignalsDropped, 2u); // >=1 at exit, >=1 bad target
  std::string Trace = extractTrace(R.ToolOutput);
  ASSERT_FALSE(Trace.empty());
  // reason codes: c=0x2 thread-exit, c=0x0 bad target
  EXPECT_TRUE(hasRecordWith(Trace, "sig-drop", "c=0x2")) << Trace;
  EXPECT_TRUE(hasRecordWith(Trace, "sig-drop", "c=0x0")) << Trace;
}

//===----------------------------------------------------------------------===//
// S2: kill() rejects bad targets and bad signal numbers.
//===----------------------------------------------------------------------===//

TEST(SchedSignal, KillRejectsBadTargetAndBadSignal) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Code.movi(Reg::R6, 0);
    // kill(57, USR1): no such thread
    Code.movi(Reg::R0, SysKill);
    Code.movi(Reg::R1, 57);
    Code.movi(Reg::R2, SigUSR1);
    Code.sys();
    Code.cmpi(Reg::R0, -1);
    Label N1 = Code.newLabel();
    Code.bne(N1);
    Code.addi(Reg::R6, Reg::R6, 1);
    Code.bind(N1);
    // kill(0, 99): signal number out of range
    Code.movi(Reg::R0, SysKill);
    Code.movi(Reg::R1, 0);
    Code.movi(Reg::R2, 99);
    Code.sys();
    Code.cmpi(Reg::R0, -1);
    Label N2 = Code.newLabel();
    Code.bne(N2);
    Code.addi(Reg::R6, Reg::R6, 1);
    Code.bind(N2);
    Code.mov(Reg::R0, Reg::R6);
    Code.ret();
  });
  Nulgrind T;
  RunReport R = runUnderCore(Img, &T);
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_EQ(R.Stats.SignalsDelivered, 0u);
  EXPECT_GE(R.Stats.SignalsDropped, 1u);
}

//===----------------------------------------------------------------------===//
// S2: sigreturn with no live signal frame is a reported error, not a
// silent no-op or a crash.
//===----------------------------------------------------------------------===//

TEST(SchedSignal, StraySigreturnIsReported) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Code.movi(Reg::R0, SysSigreturn);
    Code.sys(); // no frame: recorded and ignored
    Code.movi(Reg::R0, 3);
    Code.ret();
  });
  Nulgrind T;
  Core C(&T);
  C.output().useBuffer();
  C.applyOptions();
  C.loadImage(Img);
  CoreExit E = C.run(~0ull);
  EXPECT_EQ(E.K, CoreExit::Kind::Exited);
  EXPECT_EQ(E.Code, 3);
  bool Found = false;
  for (const auto &Rec : C.errors().records())
    Found |= Rec.Kind == "StraySigreturn";
  EXPECT_TRUE(Found) << "stray sigreturn must go through ErrorManager";
}

} // namespace
