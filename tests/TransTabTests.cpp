//===-- tests/TransTabTests.cpp - Translation-table unit tests ------------==//
///
/// \file
/// Unit tests for TransTab: probing, the 80% occupancy invariant (the
/// seed's full-table wrap returned slot 0 and let insert destroy an
/// unrelated translation), exact-N FIFO eviction, multi-extent
/// invalidation, the eager chain graph (back-edges, waiter parking,
/// relink-on-reinsert), generation bumps, and the merged fast-cache
/// statistics view.
///
//===----------------------------------------------------------------------===//

#include "core/TransTab.h"

#include <gtest/gtest.h>

using namespace vg;

namespace {

/// A minimal translation: one 4-byte extent at Addr, chain slots per the
/// given constant targets (hvm::NoChainTarget = not a constant exit).
std::unique_ptr<Translation>
makeT(uint32_t Addr, std::vector<uint32_t> ChainTargets = {},
      std::vector<std::pair<uint32_t, uint32_t>> Extents = {}) {
  auto T = std::make_unique<Translation>();
  T->Addr = Addr;
  T->Extents = Extents.empty()
                   ? std::vector<std::pair<uint32_t, uint32_t>>{{Addr, Addr + 4}}
                   : std::move(Extents);
  T->Chain = std::vector<std::atomic<vg::Translation *>>(ChainTargets.size());
  T->Blob.ChainTargets = std::move(ChainTargets);
  return T;
}

//===----------------------------------------------------------------------===//
// Probing and the occupancy invariant
//===----------------------------------------------------------------------===//

TEST(TransTab, InsertLookupRoundTrip) {
  TransTab TT(1u << 6);
  Translation *A = TT.insert(makeT(0x1000));
  Translation *B = TT.insert(makeT(0x2000));
  EXPECT_EQ(TT.lookup(0x1000), A);
  EXPECT_EQ(TT.lookup(0x2000), B);
  EXPECT_EQ(TT.lookup(0x3000), nullptr);
  EXPECT_EQ(TT.size(), 2u);
}

TEST(TransTab, ReinsertSameAddressReplaces) {
  TransTab TT(1u << 6);
  Translation *Old = TT.insert(makeT(0x1000));
  (void)Old;
  Translation *New = TT.insert(makeT(0x1000));
  EXPECT_EQ(TT.lookup(0x1000), New);
  EXPECT_EQ(TT.size(), 1u);
}

// Regression for the seed's full-table wrap: probeFor returned slot 0 when
// every slot was full, and insert() then destroyed whatever unrelated
// translation lived there. The fix makes the invariant structural — the
// pre-insert eviction check keeps occupancy at or below 80%, so the table
// can never fill, and a freshly inserted address must always be findable
// while previously inserted survivors are only ever removed by FIFO
// eviction (never silently overwritten).
TEST(TransTab, FullTablePressureNeverDestroysUnrelatedTranslations) {
  TransTab TT(1u << 2); // capacity 4: every insert is near the wrap case
  for (uint32_t I = 0; I != 64; ++I) {
    uint32_t Addr = 0x1000 + I * 0x10;
    TT.insert(makeT(Addr));
    // The occupancy invariant: the table never reaches 100%.
    ASSERT_LT(TT.size(), TT.capacity());
    // The address we just inserted is always findable (the seed bug could
    // leave it shadowed behind an unrelated survivor in its probe path).
    ASSERT_NE(TT.find(Addr), nullptr);
    ASSERT_EQ(TT.find(Addr)->Addr, Addr);
  }
  // Everything that disappeared was accounted for as an eviction or a
  // replacement — nothing was silently destroyed.
  const TransTab::Stats &S = TT.stats();
  EXPECT_EQ(S.Inserts, 64u);
  EXPECT_EQ(S.Inserts, TT.size() + S.Evicted + S.Invalidated);
}

TEST(TransTab, InsertKeepsOccupancyAtOrBelow80Percent) {
  TransTab TT(1u << 4); // capacity 16 -> at most 12 residents pre-insert
  for (uint32_t I = 0; I != 200; ++I) {
    TT.insert(makeT(0x4000 + I * 4));
    ASSERT_LE(TT.size() * 10, TT.capacity() * 8);
  }
}

//===----------------------------------------------------------------------===//
// FIFO eviction
//===----------------------------------------------------------------------===//

// Eviction must remove exactly N = max(1, residents/8) translations, and
// exactly the N oldest. The seed erased every slot with Seq <= threshold,
// which over-evicts whenever the Seq partition is uneven.
TEST(TransTab, EvictionRemovesExactlyTheOldest) {
  TransTab TT(1u << 4); // capacity 16; eviction triggers at 12 residents
  std::vector<uint32_t> Addrs;
  for (uint32_t I = 0; I != 12; ++I) {
    Addrs.push_back(0x1000 + I * 0x100);
    TT.insert(makeT(Addrs.back()));
  }
  ASSERT_EQ(TT.size(), 12u);
  ASSERT_EQ(TT.stats().EvictionRuns, 0u);

  // The 13th insert trips the 80% check: 12 residents / 8 -> evict exactly
  // one, the FIFO-oldest (Addrs[0]).
  TT.insert(makeT(0x9000));
  EXPECT_EQ(TT.stats().EvictionRuns, 1u);
  EXPECT_EQ(TT.stats().Evicted, 1u);
  EXPECT_EQ(TT.find(Addrs[0]), nullptr);
  for (size_t I = 1; I != Addrs.size(); ++I)
    EXPECT_NE(TT.find(Addrs[I]), nullptr) << "survivor " << I << " lost";
  EXPECT_NE(TT.find(0x9000), nullptr);
  EXPECT_EQ(TT.size(), 12u);

  // The next run evicts exactly the next-oldest, and nothing else.
  TT.insert(makeT(0x9100));
  EXPECT_EQ(TT.stats().Evicted, 2u);
  EXPECT_EQ(TT.find(Addrs[1]), nullptr);
  for (size_t I = 2; I != Addrs.size(); ++I)
    EXPECT_NE(TT.find(Addrs[I]), nullptr);
}

//===----------------------------------------------------------------------===//
// Invalidation
//===----------------------------------------------------------------------===//

TEST(TransTab, InvalidateRangeHitsEveryExtent) {
  TransTab TT(1u << 6);
  // A superblock built by branch chasing: entered at 0x1000 but covering
  // guest bytes in two disjoint ranges.
  TT.insert(makeT(0x1000, {}, {{0x1000, 0x1010}, {0x2000, 0x2010}}));
  TT.insert(makeT(0x5000));

  // A write into the *second* extent must kill it even though the entry
  // address is far away.
  EXPECT_EQ(TT.invalidateRange(0x2004, 1), 1u);
  EXPECT_EQ(TT.find(0x1000), nullptr);
  EXPECT_NE(TT.find(0x5000), nullptr);
  EXPECT_EQ(TT.stats().Invalidated, 1u);

  // Non-intersecting ranges touch nothing.
  EXPECT_EQ(TT.invalidateRange(0x3000, 0x1000), 0u);
  EXPECT_NE(TT.find(0x5000), nullptr);
}

TEST(TransTab, GenerationBumpsOnEvictionAndInvalidation) {
  TransTab TT(1u << 6);
  uint64_t G0 = TT.generation();
  TT.insert(makeT(0x1000));
  EXPECT_EQ(TT.generation(), G0) << "plain insert must not bump generation";
  TT.invalidateRange(0x1000, 4);
  uint64_t G1 = TT.generation();
  EXPECT_GT(G1, G0);
  TT.insert(makeT(0x2000));
  TT.invalidateAll();
  EXPECT_GT(TT.generation(), G1);
}

//===----------------------------------------------------------------------===//
// The chain graph
//===----------------------------------------------------------------------===//

TEST(TransTab, ChainsLinkEagerlyInBothInsertionOrders) {
  // Successor first: A's slot links via find() at A's insertion.
  {
    TransTab TT(1u << 6);
    Translation *B = TT.insert(makeT(0x2000));
    Translation *A = TT.insert(makeT(0x1000, {0x2000}));
    ASSERT_EQ(A->Chain.size(), 1u);
    EXPECT_EQ(A->Chain[0], B);
    EXPECT_EQ(TT.stats().ChainsFilled, 1u);
  }
  // Predecessor first: A's slot parks as a waiter and fills the moment B
  // is inserted — the dispatcher never has to fill it lazily.
  {
    TransTab TT(1u << 6);
    Translation *A = TT.insert(makeT(0x1000, {0x2000}));
    EXPECT_EQ(A->Chain[0], nullptr);
    Translation *B = TT.insert(makeT(0x2000));
    EXPECT_EQ(A->Chain[0], B);
    EXPECT_EQ(TT.stats().ChainsFilled, 1u);
  }
}

// Evicting a translation must null every predecessor chain slot pointing
// at it (the dangling-pointer bug class) — and with back-edges this is
// O(degree), not a whole-table scan.
TEST(TransTab, EvictionNullsIncomingChainPointers) {
  TransTab TT(1u << 6);
  Translation *B = TT.insert(makeT(0x2000));
  Translation *A1 = TT.insert(makeT(0x1000, {0x2000}));
  Translation *A2 = TT.insert(makeT(0x1100, {0x2000, hvm::NoChainTarget}));
  ASSERT_EQ(A1->Chain[0], B);
  ASSERT_EQ(A2->Chain[0], B);

  TT.invalidateRange(0x2000, 4);
  EXPECT_EQ(A1->Chain[0], nullptr);
  EXPECT_EQ(A2->Chain[0], nullptr);
  EXPECT_EQ(TT.stats().Unchains, 2u);
}

// After the successor is retranslated (SMC, hot-tier promotion), parked
// predecessors relink to the new translation without dispatcher help.
TEST(TransTab, PredecessorsRelinkAfterReinsertion) {
  TransTab TT(1u << 6);
  TT.insert(makeT(0x2000));
  Translation *A = TT.insert(makeT(0x1000, {0x2000}));
  TT.invalidateRange(0x2000, 4);
  ASSERT_EQ(A->Chain[0], nullptr);

  Translation *B2 = TT.insert(makeT(0x2000));
  EXPECT_EQ(A->Chain[0], B2) << "waiter parked on 0x2000 must relink";
}

// Evicting the *predecessor* must drop its parked waiter and its
// back-edge so the successor never points at freed memory.
TEST(TransTab, EvictingPredecessorCancelsWaitersAndBackEdges) {
  TransTab TT(1u << 6);
  // Waiter case: A waits on 0x2000, then A dies, then B arrives.
  Translation *A = TT.insert(makeT(0x1000, {0x2000}));
  (void)A;
  TT.invalidateRange(0x1000, 4);
  Translation *B = TT.insert(makeT(0x2000));
  EXPECT_TRUE(B->ChainedFrom.empty()) << "cancelled waiter must not link";

  // Back-edge case: C links to B, C dies, B's back-edge list empties.
  Translation *C = TT.insert(makeT(0x1200, {0x2000}));
  ASSERT_EQ(C->Chain[0], B);
  ASSERT_EQ(B->ChainedFrom.size(), 1u);
  TT.invalidateRange(0x1200, 4);
  EXPECT_TRUE(B->ChainedFrom.empty());
}

TEST(TransTab, SelfLoopChainsSurviveEviction) {
  TransTab TT(1u << 6);
  // A block whose Boring exit targets its own entry (a tight guest loop).
  Translation *A = TT.insert(makeT(0x1000, {0x1000}));
  EXPECT_EQ(A->Chain[0], A);
  TT.invalidateRange(0x1000, 4); // must not crash or leave waiters behind
  Translation *A2 = TT.insert(makeT(0x1000, {0x1000}));
  EXPECT_EQ(A2->Chain[0], A2);
  TT.invalidateAll(); // asserts Pending is empty
}

TEST(TransTab, ChainPointersSurviveEvictionRehash) {
  TransTab TT(1u << 4);
  Translation *B = TT.insert(makeT(0x2000));
  Translation *A = TT.insert(makeT(0x1000, {0x2000}));
  ASSERT_EQ(A->Chain[0], B);
  // Force eviction runs; A and B are the oldest pair, so walk right up to
  // the edge: after 10 more inserts the next run would evict B.
  for (uint32_t I = 0; I != 10; ++I)
    TT.insert(makeT(0x8000 + I * 4));
  // Rehash ran only if an eviction run happened; either way the link and
  // the resident pointers must be intact and findable.
  ASSERT_NE(TT.find(0x1000), nullptr);
  ASSERT_NE(TT.find(0x2000), nullptr);
  EXPECT_EQ(TT.find(0x1000), A);
  EXPECT_EQ(TT.find(0x2000), B);
  EXPECT_EQ(A->Chain[0], B);
}

//===----------------------------------------------------------------------===//
// Trace (tier 2) entries
//===----------------------------------------------------------------------===//

/// A tier-2 trace over the given constituent entry addresses: installed at
/// Entries[0], extents covering one 4-byte range per constituent.
std::unique_ptr<Translation>
makeTrace(std::vector<uint32_t> Entries,
          std::vector<uint32_t> ChainTargets = {}) {
  std::vector<std::pair<uint32_t, uint32_t>> Extents;
  for (uint32_t E : Entries)
    Extents.push_back({E, E + 4});
  auto T = makeT(Entries[0], std::move(ChainTargets), std::move(Extents));
  T->Tier = 2;
  T->TraceEntries = std::move(Entries);
  return T;
}

// A trace installs over its head address, replacing the head's tier-1
// translation; the other constituents keep their own translations (side
// exits land on them).
TEST(TransTab, TraceInstallReplacesHeadOnly) {
  TransTab TT(1u << 6);
  TT.insert(makeT(0x1000, {0x2000}));
  Translation *B = TT.insert(makeT(0x2000, {0x3000}));
  Translation *C = TT.insert(makeT(0x3000));
  B->Tier = C->Tier = 1;

  Translation *Tr = TT.insert(makeTrace({0x1000, 0x2000, 0x3000}));
  EXPECT_EQ(TT.find(0x1000), Tr);
  EXPECT_EQ(Tr->Tier, 2);
  EXPECT_EQ(TT.find(0x2000), B) << "constituents must stay resident";
  EXPECT_EQ(TT.find(0x3000), C);
}

// SMC/invalidateRange poisoning ANY constituent extent must evict the
// whole trace, even when the write is nowhere near the entry address —
// the trace inlined code from every constituent.
TEST(TransTab, PoisoningAnyConstituentEvictsWholeTrace) {
  for (uint32_t Victim : {0x1000u, 0x2000u, 0x3000u}) {
    TransTab TT(1u << 6);
    TT.insert(makeT(0x2000));
    TT.insert(makeT(0x3000));
    TT.insert(makeTrace({0x1000, 0x2000, 0x3000}));

    TT.invalidateRange(Victim + 2, 1);
    EXPECT_EQ(TT.find(0x1000), nullptr)
        << "write at " << std::hex << Victim << " must kill the trace";
    // The constituent whose bytes changed dies with it; the others stay.
    for (uint32_t A : {0x2000u, 0x3000u})
      EXPECT_EQ(TT.find(A) != nullptr, A != Victim);
  }
}

// Predecessors chained into a trace are unlinked when it dies, and the
// head's replacement translation re-enables them via the waiter map — the
// same relink contract as any other eviction, here across a tier change.
TEST(TransTab, TraceEvictionUnchainsAndReenablesConstituents) {
  TransTab TT(1u << 6);
  Translation *P = TT.insert(makeT(0x0500, {0x1000}));
  TT.insert(makeT(0x1000, {0x2000}));
  TT.insert(makeT(0x2000));
  Translation *Tr = TT.insert(makeTrace({0x1000, 0x2000}, {0x1000}));
  ASSERT_EQ(P->Chain[0], Tr) << "predecessor must relink to the trace";
  ASSERT_EQ(Tr->Chain[0], Tr) << "loop trace chains to itself";

  // Poison the tail constituent: the trace and the tail die.
  TT.invalidateRange(0x2000, 4);
  EXPECT_EQ(P->Chain[0], nullptr);
  EXPECT_EQ(TT.find(0x1000), nullptr);

  // The head retranslates at tier 1: the parked predecessor relinks and
  // execution through 0x1000 is re-enabled without dispatcher help.
  Translation *A2 = TT.insert(makeT(0x1000, {0x2000}));
  A2->Tier = 1;
  EXPECT_EQ(P->Chain[0], A2);
  // And the tail's own retranslation refills the head's slot.
  Translation *B2 = TT.insert(makeT(0x2000));
  EXPECT_EQ(A2->Chain[0], B2);
}

//===----------------------------------------------------------------------===//
// The merged statistics view
//===----------------------------------------------------------------------===//

// The dispatcher's fast cache bypasses the table; countFastHit folds those
// hits back in so Lookups/Hits describe every logical lookup (the seed
// under-reported both, and the hit rate, once the fast cache warmed up).
TEST(TransTab, FastCacheHitsFoldIntoLookupStats) {
  TransTab TT(1u << 6);
  TT.insert(makeT(0x1000));
  TT.lookup(0x1000);  // table hit
  TT.lookup(0x2000);  // table miss
  TT.countFastHit();  // fast-cache hit, table bypassed
  TT.countFastHit();

  const TransTab::Stats &S = TT.stats();
  EXPECT_EQ(S.Lookups, 4u);
  EXPECT_EQ(S.Hits, 3u);
  EXPECT_EQ(S.FastHits, 2u);
}

} // namespace
