//===-- core/TransCache.cpp - Persistent translation cache ----------------==//

#include "core/TransCache.h"

#include "hvm/HostVM.h"
#include "ir/IR.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>

#include <unistd.h>

using namespace vg;

namespace fs = std::filesystem;

namespace {

constexpr char Magic[4] = {'V', 'G', 'T', 'C'};
constexpr size_t HeaderSize = 4 + 4 + 8 + 8 + 4 + 8;

uint64_t fnv1a(const uint8_t *P, size_t N, uint64_t H = 0xcbf29ce484222325ULL) {
  for (size_t I = 0; I != N; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

void putU32(std::vector<uint8_t> &B, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    B.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &B, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    B.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

/// Bounds-checked little-endian reader; any overrun marks the cursor bad
/// and every subsequent read returns 0, so parse code can check Ok once.
struct Cursor {
  const uint8_t *P;
  size_t N, Off = 0;
  bool Ok = true;

  bool take(size_t K) {
    if (!Ok || K > N - Off) {
      Ok = false;
      return false;
    }
    return true;
  }
  uint8_t u8() {
    if (!take(1))
      return 0;
    return P[Off++];
  }
  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(P[Off + I]) << (8 * I);
    Off += 4;
    return V;
  }
  uint64_t u64() {
    if (!take(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(P[Off + I]) << (8 * I);
    Off += 8;
    return V;
  }
};

uint64_t readFieldU64(const uint8_t *P) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

void writeFieldU64(uint8_t *P, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    P[I] = static_cast<uint8_t>(V >> (8 * I));
}

std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

bool readWholeFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::fseek(F, 0, SEEK_END);
  long Sz = std::ftell(F);
  std::fseek(F, 0, SEEK_SET);
  if (Sz < 0 || Sz > (64l << 20)) { // an entry is never remotely this big
    std::fclose(F);
    return false;
  }
  Out.resize(static_cast<size_t>(Sz));
  size_t Got = Sz ? std::fread(Out.data(), 1, Out.size(), F) : 0;
  std::fclose(F);
  return Got == Out.size();
}

} // namespace

TransCache::TransCache(std::string DirIn, uint64_t MaxBytesIn,
                       uint64_t ConfigHashIn)
    : Dir(std::move(DirIn)), MaxBytes(MaxBytesIn), ConfigHash(ConfigHashIn) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  for (const auto &DE : fs::directory_iterator(Dir, EC)) {
    if (!DE.is_regular_file(EC) || DE.path().extension() != ".vgtc")
      continue;
    TotalBytes += static_cast<uint64_t>(DE.file_size(EC));
  }
}

uint64_t TransCache::entryKey(uint32_t PC, bool Hot, uint64_t PrefixHash) {
  uint8_t Seed[13];
  for (int I = 0; I != 4; ++I)
    Seed[I] = static_cast<uint8_t>(PC >> (8 * I));
  Seed[4] = Hot ? 1 : 0;
  for (int I = 0; I != 8; ++I)
    Seed[5 + I] = static_cast<uint8_t>(PrefixHash >> (8 * I));
  return fnv1a(Seed, sizeof(Seed));
}

uint64_t TransCache::configHash(
    const std::string &ToolId,
    const std::vector<std::pair<std::string, std::string>> &Options) {
  uint64_t H = fnv1a(reinterpret_cast<const uint8_t *>(&TransCacheFormatVersion),
                     sizeof(TransCacheFormatVersion));
  H = fnv1a(reinterpret_cast<const uint8_t *>(ToolId.data()), ToolId.size(),
            H);
  for (const auto &[Name, Value] : Options) {
    std::string Item = Name + "=" + Value + "\n";
    H = fnv1a(reinterpret_cast<const uint8_t *>(Item.data()), Item.size(), H);
  }
  return H;
}

std::string TransCache::entryFileName(uint64_t ConfigHash, uint64_t Key) {
  return hex16(ConfigHash) + "-" + hex16(Key) + ".vgtc";
}

std::string TransCache::entryPath(uint64_t Key) const {
  return Dir + "/" + entryFileName(ConfigHash, Key);
}

TransCache::LoadResult TransCache::load(uint64_t Key, TransCacheEntry &Out) {
  std::vector<uint8_t> File;
  if (!readWholeFile(entryPath(Key), File))
    return LoadResult::NotFound;
  return decodeEntryFile(File, ConfigHash, Key, Out, /*ResolveCallees=*/true);
}

TransCache::LoadResult
TransCache::decodeEntryFile(const std::vector<uint8_t> &File,
                            uint64_t ConfigHash, uint64_t Key,
                            TransCacheEntry &Out, bool ResolveCallees) {
  // A zero-length file is what an interrupted writer or an aggressive
  // truncation leaves behind. It must settle as Malformed (a reject) —
  // an entry that exists but carries no translation can never be a hit
  // candidate. Pinned by TransCacheTests.ZeroLengthEntryIsMalformed.
  if (File.empty() || File.size() < HeaderSize)
    return LoadResult::Malformed;
  Cursor H{File.data(), HeaderSize};
  uint8_t M[4] = {H.u8(), H.u8(), H.u8(), H.u8()};
  if (std::memcmp(M, Magic, 4) != 0 || H.u32() != TransCacheFormatVersion ||
      H.u64() != ConfigHash || H.u64() != Key)
    return LoadResult::Malformed;
  uint32_t PayloadLen = H.u32();
  uint64_t Checksum = H.u64();
  if (!H.Ok || File.size() != HeaderSize + PayloadLen)
    return LoadResult::Malformed;
  const uint8_t *Payload = File.data() + HeaderSize;
  if (fnv1a(Payload, PayloadLen) != Checksum)
    return LoadResult::Malformed;

  Cursor C{Payload, PayloadLen};
  TransCacheEntry E;
  E.Addr = C.u32();
  E.Tier = C.u8();
  E.NumInsns = C.u32();
  E.CodeHash = C.u64();
  E.NumSpillSlots = C.u32();
  E.NumChainSlots = C.u32();
  uint32_t NExtents = C.u32();
  for (uint32_t I = 0; I != NExtents && C.Ok; ++I) {
    uint32_t Lo = C.u32(), Hi = C.u32();
    E.Extents.push_back({Lo, Hi});
  }
  uint32_t NTargets = C.u32();
  for (uint32_t I = 0; I != NTargets && C.Ok; ++I)
    E.ChainTargets.push_back(C.u32());
  std::vector<std::string> Names;
  uint32_t NNames = C.u32();
  for (uint32_t I = 0; I != NNames && C.Ok; ++I) {
    uint32_t Len = C.u32();
    if (!C.take(Len))
      break;
    Names.emplace_back(reinterpret_cast<const char *>(C.P + C.Off), Len);
    C.Off += Len;
  }
  uint32_t NBytes = C.u32();
  if (C.take(NBytes)) {
    E.Bytes.assign(C.P + C.Off, C.P + C.Off + NBytes);
    C.Off += NBytes;
  }
  if (!C.Ok || C.Off != C.N || E.ChainTargets.size() != E.NumChainSlots)
    return LoadResult::Malformed;

  // Re-walk the blob with the same decoder store() used, so a stored
  // entry whose bytes do not decode — or that somehow smuggled an
  // unpatched field — can never reach the executor. The structural walk
  // and index bounds checks always run; only the name -> live pointer
  // patch is skipped for out-of-process validators (the server daemon,
  // where this process's Callee addresses mean nothing).
  std::vector<uint32_t> Slots;
  if (!hvm::findCalleeSlots(E.Bytes, Slots))
    return LoadResult::Malformed;
  for (uint32_t Off : Slots) {
    uint64_t Idx = readFieldU64(E.Bytes.data() + Off);
    if (Idx >= Names.size())
      return LoadResult::Malformed;
    if (!ResolveCallees)
      continue;
    const ir::Callee *Callee = ir::findCalleeByName(Names[Idx]);
    if (!Callee)
      return LoadResult::Malformed; // helper unknown to this process
    writeFieldU64(E.Bytes.data() + Off,
                  static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Callee)));
  }

  Out = std::move(E);
  return LoadResult::Found;
}

bool TransCache::store(uint64_t Key, const TransCacheEntry &E) {
  std::vector<uint8_t> File;
  if (!encodeEntryFile(ConfigHash, Key, E, File)) {
    ++WriteFailures;
    return false;
  }
  return storeFile(Key, File);
}

bool TransCache::encodeEntryFile(uint64_t ConfigHash, uint64_t Key,
                                 const TransCacheEntry &E,
                                 std::vector<uint8_t> &File) {
  // Make the blob position-independent: every CALL's pointer field becomes
  // an index into the serialized name table.
  std::vector<uint32_t> Slots;
  if (!hvm::findCalleeSlots(E.Bytes, Slots))
    return false;
  std::vector<uint8_t> Bytes = E.Bytes;
  std::vector<std::string> Names;
  std::map<uint64_t, uint64_t> NameIdx; // pointer bits -> table index
  for (uint32_t Off : Slots) {
    uint64_t Ptr = readFieldU64(Bytes.data() + Off);
    auto It = NameIdx.find(Ptr);
    if (It == NameIdx.end()) {
      const char *Name = ir::registeredCalleeName(
          reinterpret_cast<const ir::Callee *>(static_cast<uintptr_t>(Ptr)));
      if (!Name)
        return false; // anonymous helper: entry cannot leave the process
      It = NameIdx.emplace(Ptr, Names.size()).first;
      Names.push_back(Name);
    }
    writeFieldU64(Bytes.data() + Off, It->second);
  }

  std::vector<uint8_t> Payload;
  putU32(Payload, E.Addr);
  Payload.push_back(E.Tier);
  putU32(Payload, E.NumInsns);
  putU64(Payload, E.CodeHash);
  putU32(Payload, E.NumSpillSlots);
  putU32(Payload, E.NumChainSlots);
  putU32(Payload, static_cast<uint32_t>(E.Extents.size()));
  for (auto [Lo, Hi] : E.Extents) {
    putU32(Payload, Lo);
    putU32(Payload, Hi);
  }
  putU32(Payload, static_cast<uint32_t>(E.ChainTargets.size()));
  for (uint32_t T : E.ChainTargets)
    putU32(Payload, T);
  putU32(Payload, static_cast<uint32_t>(Names.size()));
  for (const std::string &N : Names) {
    putU32(Payload, static_cast<uint32_t>(N.size()));
    Payload.insert(Payload.end(), N.begin(), N.end());
  }
  putU32(Payload, static_cast<uint32_t>(Bytes.size()));
  Payload.insert(Payload.end(), Bytes.begin(), Bytes.end());

  File.clear();
  File.reserve(HeaderSize + Payload.size());
  File.insert(File.end(), Magic, Magic + 4);
  putU32(File, TransCacheFormatVersion);
  putU64(File, ConfigHash);
  putU64(File, Key);
  putU32(File, static_cast<uint32_t>(Payload.size()));
  putU64(File, fnv1a(Payload.data(), Payload.size()));
  File.insert(File.end(), Payload.begin(), Payload.end());
  return true;
}

bool TransCache::storeFile(uint64_t Key, const std::vector<uint8_t> &File) {
  std::string Path = entryPath(Key);
  std::error_code EC;
  uint64_t OldSize = static_cast<uint64_t>(fs::file_size(Path, EC));
  if (EC)
    OldSize = 0;
  if (MaxBytes)
    evictToFit(File.size() > OldSize ? File.size() - OldSize : 0);

  // Atomic publication: a crash mid-write leaves only a temp file the next
  // construction ignores (wrong extension), never a torn entry. The temp
  // name carries pid + a process-wide counter: two writers racing on the
  // same key (two processes warming one directory, or two threads with
  // separate TransCache instances) must each stage into a private file —
  // a shared temp name would interleave their writes and rename(2) could
  // then publish the torn mix under the valid name. Pinned by
  // TransCacheTests.TwoWritersSameKeyNeverTearAnEntry.
  static std::atomic<uint64_t> TmpCounter{0};
  std::string Tmp = Path + "." + std::to_string(getpid()) + "-" +
                    std::to_string(TmpCounter.fetch_add(1)) + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    ++WriteFailures;
    return false;
  }
  size_t Put = std::fwrite(File.data(), 1, File.size(), F);
  bool Flushed = std::fclose(F) == 0 && Put == File.size();
  if (!Flushed) {
    fs::remove(Tmp, EC);
    ++WriteFailures;
    return false;
  }
  fs::rename(Tmp, Path, EC);
  if (EC) {
    fs::remove(Tmp, EC);
    ++WriteFailures;
    return false;
  }
  TotalBytes += File.size();
  TotalBytes -= std::min<uint64_t>(TotalBytes, OldSize);
  return true;
}

void TransCache::evictToFit(uint64_t NeedBytes) {
  if (TotalBytes + NeedBytes <= MaxBytes)
    return;
  // Oldest-first by mtime; rarely taken, so the directory scan is fine.
  struct Victim {
    fs::file_time_type When;
    uint64_t Size;
    fs::path Path;
  };
  std::vector<Victim> Vs;
  std::error_code EC;
  for (const auto &DE : fs::directory_iterator(Dir, EC)) {
    if (!DE.is_regular_file(EC) || DE.path().extension() != ".vgtc")
      continue;
    Vs.push_back({DE.last_write_time(EC), static_cast<uint64_t>(DE.file_size(EC)),
                  DE.path()});
  }
  std::sort(Vs.begin(), Vs.end(),
            [](const Victim &A, const Victim &B) { return A.When < B.When; });
  for (const Victim &V : Vs) {
    if (TotalBytes + NeedBytes <= MaxBytes)
      break;
    if (fs::remove(V.Path, EC)) {
      TotalBytes -= std::min(TotalBytes, V.Size);
      ++EvictedFiles;
    }
  }
}

void PoisonSet::poison(uint32_t Addr, uint32_t Len) {
  if (Len == 0)
    return;
  // 64-bit exclusive end: Addr + Len may legitimately equal 2^32 (a range
  // ending at the top of the guest space), which must cover the final
  // byte 0xFFFFFFFF rather than being clipped or wrapping.
  uint64_t Hi = std::min<uint64_t>(static_cast<uint64_t>(Addr) + Len,
                                   0x100000000ull);
  Ranges.push_back({Addr, Hi});
}

bool PoisonSet::poisoned(
    const std::vector<std::pair<uint32_t, uint32_t>> &Extents) const {
  if (All)
    return !Extents.empty();
  for (auto [Lo, Hi] : Extents)
    for (auto [PLo, PHi] : Ranges)
      if (Lo < PHi && PLo < Hi)
        return true;
  return false;
}

void TransCache::poison(uint32_t Addr, uint32_t Len) {
  Poison.poison(Addr, Len);
}

void TransCache::poisonAll() { Poison.poisonAll(); }

bool TransCache::poisoned(
    const std::vector<std::pair<uint32_t, uint32_t>> &Extents) const {
  return Poison.poisoned(Extents);
}
