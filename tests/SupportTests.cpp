//===-- tests/SupportTests.cpp - Support-library unit tests ---------------==//
///
/// \file
/// Unit tests for the small substrates: option parsing, output sinks (R9),
/// error recording/deduplication/suppressions, hashing, and guest images.
///
//===----------------------------------------------------------------------===//

#include "core/ErrorManager.h"
#include "core/GuestImage.h"
#include "guest/GuestMemory.h"
#include "support/Hashing.h"
#include "support/Options.h"
#include "support/Output.h"

#include <gtest/gtest.h>

#include <set>

using namespace vg;

namespace {

//===----------------------------------------------------------------------===//
// OptionRegistry
//===----------------------------------------------------------------------===//

TEST(Options, ParseTypedValues) {
  OptionRegistry O;
  O.addOption("leak-check", "yes", "");
  O.addOption("threshold", "2097152", "");
  O.addOption("log-file", "", "");
  auto Unknown = O.parse({"--leak-check=no", "--threshold=0x1000",
                          "--log-file=/tmp/x", "--bogus=1", "stray"});
  EXPECT_FALSE(O.getBool("leak-check"));
  EXPECT_EQ(O.getInt("threshold"), 0x1000);
  EXPECT_EQ(O.getString("log-file"), "/tmp/x");
  ASSERT_EQ(Unknown.size(), 2u);
  EXPECT_EQ(Unknown[0], "--bogus=1");
  EXPECT_EQ(Unknown[1], "stray");
}

TEST(Options, BareFlagMeansYes) {
  OptionRegistry O;
  O.addOption("chaining", "no", "");
  O.parse({"--chaining"});
  EXPECT_TRUE(O.getBool("chaining"));
}

TEST(Options, DefaultsSurviveAndHelpRendered) {
  OptionRegistry O;
  O.addOption("smc-check", "stack", "when to check for SMC");
  EXPECT_EQ(O.getString("smc-check"), "stack");
  std::string H = O.helpText();
  EXPECT_NE(H.find("--smc-check"), std::string::npos);
  EXPECT_NE(H.find("default: stack"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// OutputSink (R9)
//===----------------------------------------------------------------------===//

TEST(Output, BufferModeCapturesAndClears) {
  OutputSink S;
  S.useBuffer();
  S.printf("x=%d %s", 42, "ok");
  EXPECT_EQ(S.buffer(), "x=42 ok");
  EXPECT_EQ(S.takeBuffer(), "x=42 ok");
  EXPECT_TRUE(S.buffer().empty());
}

TEST(Output, FileModeWrites) {
  std::string Path = "/tmp/vg_output_test.txt";
  {
    OutputSink S;
    ASSERT_TRUE(S.openFile(Path));
    S.printf("line %d\n", 1);
  } // destructor flushes/closes
  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[32] = {};
  [[maybe_unused]] size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  std::remove(Path.c_str());
  EXPECT_STREQ(Buf, "line 1\n");
}

//===----------------------------------------------------------------------===//
// ErrorManager
//===----------------------------------------------------------------------===//

TEST(Errors, DeduplicatesByKindAndPC) {
  ErrorManager E;
  EXPECT_TRUE(E.record("UninitValue", "m", 0x100));
  EXPECT_FALSE(E.record("UninitValue", "m", 0x100)); // same site
  EXPECT_TRUE(E.record("UninitValue", "m", 0x200));  // new site
  EXPECT_TRUE(E.record("InvalidRead", "m", 0x100));  // new kind
  EXPECT_EQ(E.uniqueErrors(), 3u);
  EXPECT_EQ(E.totalOccurrences(), 4u);
}

TEST(Errors, SuppressionsByKindAndRange) {
  ErrorManager E;
  EXPECT_EQ(E.parseSuppressions("# comment\nUninitValue\n"
                                "InvalidRead:0x1000-0x1FFF\n\n"),
            2u);
  EXPECT_FALSE(E.record("UninitValue", "m", 0x5));      // kind-wide
  EXPECT_FALSE(E.record("InvalidRead", "m", 0x1234));   // in range
  EXPECT_TRUE(E.record("InvalidRead", "m", 0x3000));    // out of range
  EXPECT_EQ(E.suppressedCount(), 2u);
  EXPECT_EQ(E.uniqueErrors(), 1u);
}

TEST(Errors, SummaryFormat) {
  ErrorManager E;
  E.record("K", "msg text", 0x42, {0x10, 0x20});
  E.record("K", "msg text", 0x42);
  OutputSink S;
  S.useBuffer();
  E.printSummary(S);
  std::string Out = S.takeBuffer();
  EXPECT_NE(Out.find("msg text (x2)"), std::string::npos);
  EXPECT_NE(Out.find("by 0x00000010"), std::string::npos);
  EXPECT_NE(Out.find("ERROR SUMMARY: 2 errors from 1 contexts"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

TEST(Hashing, ByteHashSensitivity) {
  uint8_t A[] = {1, 2, 3, 4};
  uint8_t B[] = {1, 2, 3, 5};
  EXPECT_NE(hashBytes(A, 4), hashBytes(B, 4));
  EXPECT_EQ(hashBytes(A, 4), hashBytes(A, 4));
  EXPECT_NE(hashBytes(A, 3), hashBytes(A, 4));
}

TEST(Hashing, AddrHashSpreadsNeighbours) {
  // Adjacent block addresses must not collide in a 2^13 cache.
  std::set<uint32_t> Buckets;
  for (uint32_t A = 0x1000; A != 0x1000 + 64 * 8; A += 8)
    Buckets.insert(hashAddr(A) & 0x1FFF);
  EXPECT_GE(Buckets.size(), 60u); // near-perfect spread of 64 inputs
}

//===----------------------------------------------------------------------===//
// GuestImage
//===----------------------------------------------------------------------===//

TEST(GuestImage, BuilderCollectsSegmentsAndSymbols) {
  vg1::Assembler Code(0x1000);
  Code.symbol("entry");
  Code.nop();
  Code.symbol("fn2");
  Code.hlt();
  vg1::Assembler Data(0x8000);
  Data.symbol("glob");
  Data.emitU32(7);
  GuestImage Img = GuestImageBuilder()
                       .addCode(Code)
                       .addData(Data)
                       .entry(0x1000)
                       .stackSize(64 * 1024)
                       .build();
  ASSERT_EQ(Img.Segments.size(), 2u);
  EXPECT_EQ(Img.Segments[0].Base, 0x1000u);
  EXPECT_EQ(Img.Segments[0].Perms & PermExec, PermExec);
  EXPECT_EQ(Img.Segments[1].Perms & PermWrite, PermWrite);
  EXPECT_EQ(Img.symbol("entry"), 0x1000u);
  EXPECT_EQ(Img.symbol("fn2"), 0x1001u);
  EXPECT_EQ(Img.symbol("glob"), 0x8000u);
  EXPECT_EQ(Img.symbol("nope"), 0u);
  EXPECT_EQ(Img.StackSize, 64u * 1024);
}

} // namespace
