# Empty dependencies file for vg.
# This may be replaced when dependencies are built.
