file(REMOVE_RECURSE
  "CMakeFiles/sec54_shadowmem.dir/sec54_shadowmem.cpp.o"
  "CMakeFiles/sec54_shadowmem.dir/sec54_shadowmem.cpp.o.d"
  "sec54_shadowmem"
  "sec54_shadowmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec54_shadowmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
