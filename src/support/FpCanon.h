//===-- support/FpCanon.h - Deterministic NaN canonicalisation --*- C++ -*-==//
///
/// \file
/// When an FP arithmetic operation produces a NaN from NaN operands, IEEE
/// 754 leaves *which* input payload propagates unspecified, and C++
/// compilers exploit that freedom: a commutative `a + b` may be emitted as
/// `addsd a, b` at one call site and `addsd b, a` at another. The
/// reference interpreter and the JIT's ALU evaluator both compute FP in
/// C++, so without canonicalisation the same guest instruction can retire
/// different NaN bit patterns in the two engines — found by the
/// differential fuzzer as a memory-checksum divergence on
/// `fneg f0, f7; fadd f2, f7, f0` with f7 = NaN (the two operands are the
/// same payload with opposite signs, so the operand order is observable).
///
/// Every engine that retires an FP arithmetic result must pass it through
/// canonF64(): any NaN becomes the positive quiet NaN. Sign-manipulation
/// ops (FNEG, FABS) are exempt — IEEE defines them as bit operations with
/// fully determined results, and canonicalising them would destroy the
/// sign flip the guest asked for.
///
//===----------------------------------------------------------------------===//
#ifndef VG_SUPPORT_FPCANON_H
#define VG_SUPPORT_FPCANON_H

#include <cmath>
#include <cstdint>
#include <cstring>

namespace vg {

/// The canonical quiet NaN (positive, no payload).
constexpr uint64_t CanonicalNaNBits = 0x7FF8000000000000ull;

inline double canonF64(double D) {
  if (std::isnan(D)) {
    std::memcpy(&D, &CanonicalNaNBits, 8);
    return D;
  }
  return D;
}

} // namespace vg

#endif // VG_SUPPORT_FPCANON_H
