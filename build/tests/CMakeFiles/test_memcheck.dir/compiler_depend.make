# Empty compiler generated dependencies file for test_memcheck.
# This may be replaced when dependencies are built.
