#!/usr/bin/env sh
# Tier-1 verification: configure, build, run the full test suite, then
# smoke-run the dispatcher and slow-down benches (a crash or a hang here
# is a regression even when the unit tests pass).
#
#   --fuzz-soak   additionally run the full differential-fuzzing soak
#                 (the 2000-iteration acceptance campaign plus forced
#                 signal/SMC variants); minutes, not seconds.
set -eu

cd "$(dirname "$0")/.."

FUZZ_SOAK=0
for arg in "$@"; do
  case "$arg" in
    --fuzz-soak) FUZZ_SOAK=1 ;;
    *) echo "verify.sh: unknown option '$arg'" >&2; exit 2 ;;
  esac
done

cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j

echo "== smoke: sec39_dispatch =="
./build/bench/sec39_dispatch

echo "== smoke: sec32_asyncjit (background promotion) =="
./build/bench/sec32_asyncjit

echo "== smoke: trace tier (third-tier JIT) =="
# A hot multi-block workload with the trace tier on must actually stitch
# traces: the --profile report's trace section is the contract.
TF=$(./build/examples/vgrun --tool=nulgrind --chaining=yes \
    --hot-threshold=50 --trace-tier=yes --profile=yes vortex 2>&1 \
    | sed -n 's/.*traces-formed=\([0-9]*\).*/\1/p')
[ "${TF:-0}" -gt 0 ] || {
  echo "trace smoke: expected traces-formed > 0, got '${TF:-none}'" >&2
  exit 1
}
echo "traces formed: $TF"

echo "== smoke: table2_slowdown =="
./build/bench/table2_slowdown

echo "== smoke: sec33_warmstart (persistent translation cache) =="
# Cold-then-warm runs of the table2 trio against one --tt-cache directory.
# The bench itself enforces the contract: warm hit rate >= 70%, zero
# rejects, and byte-identical stdout between cold and warm.
./build/bench/sec33_warmstart

echo "== smoke: translation server (vgserve) =="
# Cold run populates a cache directory, a vgserve daemon takes it over,
# and a fresh client (no local cache) must install everything over the
# socket: >= 1 server hit, zero inline-JIT fallbacks.
TTDIR=$(mktemp -d "${TMPDIR:-/tmp}/vg-verify-tts.XXXXXX")
TTSOCK="$TTDIR/vgserve.sock"
./build/examples/vgrun --tool=nulgrind --chaining=yes --hot-threshold=2 \
    --tt-cache="$TTDIR/cache" vortex >/dev/null 2>&1
./build/src/vgserve --socket="$TTSOCK" --dir="$TTDIR/cache" --quiet &
VGSERVE_PID=$!
for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
  [ -S "$TTSOCK" ] && break
  sleep 0.1
done
SRVPROF=$(./build/examples/vgrun --tool=nulgrind --chaining=yes \
    --hot-threshold=2 --tt-server="$TTSOCK" --profile=yes vortex 2>&1 \
    | sed -n 's/^server \(requests\|timeouts\)/server \1/p')
kill "$VGSERVE_PID" 2>/dev/null || true
wait "$VGSERVE_PID" 2>/dev/null || true
rm -rf "$TTDIR"
echo "$SRVPROF"
SRVHITS=$(echo "$SRVPROF" | sed -n 's/^server requests=[0-9]* hits=\([0-9]*\).*/\1/p')
SRVFALL=$(echo "$SRVPROF" | sed -n 's/.*fallbacks=\([0-9]*\).*/\1/p')
[ "${SRVHITS:-0}" -gt 0 ] || {
  echo "server smoke: expected server hits > 0, got '${SRVHITS:-none}'" >&2
  exit 1
}
[ "${SRVFALL:-1}" -eq 0 ] || {
  echo "server smoke: expected 0 fallbacks, got '${SRVFALL:-none}'" >&2
  exit 1
}

echo "== smoke: loopgrind (tool plug-in surface) =="
# The demo tool built on the opened plug-in surface must produce a loop
# report on a loopy workload: back-edges and at least one hot loop head.
LGOUT=$(./build/examples/vgrun --tool=loopgrind --chaining=yes \
    --loop-top=3 vortex 2>&1)
echo "$LGOUT" | grep -q '^==loopgrind== blocks entered:' || {
  echo "loopgrind smoke: missing report header" >&2
  exit 1
}
LGBE=$(echo "$LGOUT" \
    | sed -n 's/^==loopgrind== blocks entered: [0-9]*, back-edges: \([0-9]*\).*/\1/p')
[ "${LGBE:-0}" -gt 0 ] || {
  echo "loopgrind smoke: expected back-edges > 0, got '${LGBE:-none}'" >&2
  exit 1
}
echo "loopgrind back-edges: $LGBE"

echo "== smoke: sec314_sched (quick soak) =="
# 5 seeds instead of 50; still checks clean exits, zero Memcheck errors,
# and byte-identical trace replay per seed.
VG_SOAK_QUICK=1 ./build/bench/sec314_sched

echo "== smoke: sec314_mtscale (sharded scheduler) =="
# Correctness always (identical checksums at --sched-threads=1/2/4); the
# >=1.5x speedup target is enforced only on hosts with >=4 hardware
# threads (the bench reports overhead instead on smaller machines).
VG_MTSCALE_QUICK=1 ./build/bench/sec314_mtscale

echo "== smoke: sec54_shadowmem (quick) =="
# Quick mode: every layout x pattern cell runs and BENCH_shadowmem.json is
# written, but the micro cells use fewer ops and the vortex macro
# comparison is skipped.
VG_SEC54_QUICK=1 ./build/bench/sec54_shadowmem \
    --benchmark_min_time=0.05

echo "== smoke: vgfuzz (differential fuzzing) =="
# Short deterministic campaign + the planted-bug self-test. Honours
# VG_SOAK_QUICK like the scheduler soak: quick mode trims the campaign.
FUZZ_ITERS=200
[ "${VG_SOAK_QUICK:-0}" = "1" ] && FUZZ_ITERS=50
./build/src/vgfuzz --iters="$FUZZ_ITERS" --seed=1 --quiet
./build/src/vgfuzz --self-test --seed=1 --quiet

echo "== smoke: ThreadSanitizer (concurrency label) =="
# The TranslationService worker/guest-thread protocol, the sharded
# scheduler (--sched-threads=N), and the MT client-request path under
# TSan: service, persistent-cache, MT-scheduler, and client-request unit
# tests (everything carrying the `concurrency` ctest label, via the tsan
# preset).
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j \
    --target test_translationservice --target test_transcache \
    --target test_transserver --target test_mtsched \
    --target test_clientrequest >/dev/null
ctest --preset tsan

if [ "$FUZZ_SOAK" = "1" ]; then
  echo "== fuzz soak: 2000-iteration acceptance campaign =="
  ./build/src/vgfuzz --iters=2000 --seed=1 --quiet
  echo "== fuzz soak: forced signals =="
  ./build/src/vgfuzz --iters=300 --seed=77 --signals=always --quiet
  echo "== fuzz soak: forced self-modifying code =="
  ./build/src/vgfuzz --iters=300 --seed=99 --smc=always --quiet
fi

echo "verify: OK"
