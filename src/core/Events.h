//===-- core/Events.h - The events system (Table 1) -------------*- C++ -*-==//
///
/// \file
/// Valgrind's events system (Section 3.12): the IR cannot describe guest
/// state changes made by system calls, start-up allocations, or stack
/// growth, so the core describes them through these callbacks. A tool
/// registers a callback per event; the core and the system-call wrappers
/// invoke them. The event list is exactly the paper's Table 1.
///
/// Requirement mapping:
///   R4: pre_reg_read, post_reg_write, pre_mem_read{,_asciiz},
///       pre_mem_write, post_mem_write      (from every syscall wrapper)
///   R5: new_mem_startup                    (from the code loader)
///   R6: new_mem_mmap, die_mem_munmap, new_mem_brk, die_mem_brk,
///       copy_mem_mremap                    (from mmap/munmap/brk/mremap
///                                           wrappers)
///   R7: new_mem_stack, die_mem_stack       (from instrumentation of SP
///                                           changes)
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_EVENTS_H
#define VG_CORE_EVENTS_H

#include <cstdint>
#include <functional>

namespace vg {

/// Event callbacks a tool may register. Null members are simply skipped,
/// so lightweight tools pay nothing for events they ignore.
struct EventHub {
  // --- R4: system-call register/memory accesses -------------------------
  /// The wrapper for \p Syscall is about to read \p Size bytes of guest
  /// state at \p Offset (a register argument).
  std::function<void(int Tid, uint32_t Offset, uint32_t Size,
                     const char *Syscall)>
      PreRegRead;
  /// The wrapper for a syscall has written guest state (e.g. the result
  /// register).
  std::function<void(int Tid, uint32_t Offset, uint32_t Size)> PostRegWrite;
  /// The kernel is about to read client memory [Addr, Addr+Len).
  std::function<void(int Tid, uint32_t Addr, uint32_t Len,
                     const char *Syscall)>
      PreMemRead;
  /// The kernel is about to read a NUL-terminated string at Addr.
  std::function<void(int Tid, uint32_t Addr, const char *Syscall)>
      PreMemReadAsciiz;
  /// The kernel is about to write client memory [Addr, Addr+Len).
  std::function<void(int Tid, uint32_t Addr, uint32_t Len,
                     const char *Syscall)>
      PreMemWrite;
  /// The kernel has written client memory [Addr, Addr+Len).
  std::function<void(int Tid, uint32_t Addr, uint32_t Len)> PostMemWrite;

  // --- R5: start-up allocations ------------------------------------------
  /// The loader mapped [Addr, Addr+Len) at program start-up.
  std::function<void(uint32_t Addr, uint32_t Len, uint8_t Perms)>
      NewMemStartup;

  // --- R6: system-call (de)allocations ------------------------------------
  std::function<void(uint32_t Addr, uint32_t Len, uint8_t Perms)> NewMemMmap;
  std::function<void(uint32_t Addr, uint32_t Len)> DieMemMunmap;
  std::function<void(uint32_t Addr, uint32_t Len)> NewMemBrk;
  std::function<void(uint32_t Addr, uint32_t Len)> DieMemBrk;
  /// mremap moved memory: shadow state for [Src, Src+Len) must be copied
  /// to [Dst, Dst+Len).
  std::function<void(uint32_t Src, uint32_t Dst, uint32_t Len)>
      CopyMemMremap;

  // --- R7: stack (de)allocations ------------------------------------------
  std::function<void(uint32_t Addr, uint32_t Len)> NewMemStack;
  std::function<void(uint32_t Addr, uint32_t Len)> DieMemStack;

  // --- extension events (beyond Table 1, in the spirit of Valgrind's
  //     fuller event list) ------------------------------------------------
  /// A read() syscall delivered \p Len bytes from \p Fd (named \p Source)
  /// into client memory — taint tools use this to mark input sources.
  std::function<void(int Tid, uint32_t Fd, uint32_t Addr, uint32_t Len,
                     const char *Source)>
      PostFileRead;

  /// A system call is about to be dispatched to its wrapper.
  std::function<void(int Tid, uint32_t Num)> PreSyscall;
  /// A system call's wrapper finished with \p Result in r0. Not fired for
  /// control transfers that never return a result to the caller
  /// (exit/exit_thread/sigreturn).
  std::function<void(int Tid, uint32_t Num, uint32_t Result)> PostSyscall;
  /// The --fault-inject plan fired: \p Kind is a FaultKind value, \p Arg a
  /// site-specific detail (syscall number, shortened length, signal, ...).
  std::function<void(int Tid, uint32_t Kind, uint32_t Arg)> FaultInjected;

  /// True when a tool wants stack events: the core only instruments SP
  /// changes in that case (they are frequent and therefore costly,
  /// Section 2 R7).
  bool wantsStackEvents() const {
    return static_cast<bool>(NewMemStack) || static_cast<bool>(DieMemStack);
  }
};

} // namespace vg

#endif // VG_CORE_EVENTS_H
