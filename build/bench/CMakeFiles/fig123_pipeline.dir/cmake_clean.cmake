file(REMOVE_RECURSE
  "CMakeFiles/fig123_pipeline.dir/fig123_pipeline.cpp.o"
  "CMakeFiles/fig123_pipeline.dir/fig123_pipeline.cpp.o.d"
  "fig123_pipeline"
  "fig123_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig123_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
