//===-- support/Hashing.h - Code hashing utilities --------------*- C++ -*-==//
///
/// \file
/// Hash functions used by the translation system: a 64-bit FNV-1a hash over
/// original guest code bytes (self-modifying-code checks, Section 3.16) and
/// the address hash for the linear-probe translation table (Section 3.8).
///
//===----------------------------------------------------------------------===//
#ifndef VG_SUPPORT_HASHING_H
#define VG_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>

namespace vg {

/// 64-bit FNV-1a over a byte range. Cheap and adequate for detecting that
/// translated guest bytes changed underneath a cached translation.
inline uint64_t hashBytes(const uint8_t *Data, size_t Len) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I != Len; ++I) {
    H ^= Data[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// Mixes a 32-bit guest address into a well-distributed hash for the
/// translation table and the dispatcher's direct-mapped fast cache.
inline uint32_t hashAddr(uint32_t Addr) {
  uint32_t H = Addr;
  H ^= H >> 16;
  H *= 0x7feb352dU;
  H ^= H >> 15;
  H *= 0x846ca68bU;
  H ^= H >> 16;
  return H;
}

} // namespace vg

#endif // VG_SUPPORT_HASHING_H
