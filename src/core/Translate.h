//===-- core/Translate.h - The eight-phase translation pipeline -*- C++ -*-==//
///
/// \file
/// Drives one code block through all eight translation phases of Section
/// 3.7:
///
///   1. Disassembly (machine code -> tree IR)        [frontend]
///   2. Optimisation 1 (tree IR -> flat IR)          [ir]
///   3. Instrumentation (flat IR -> flat IR)         [the tool plug-in]
///   4. Optimisation 2 (flat IR -> flat IR)          [ir]
///   5. Tree building (flat IR -> tree IR)           [ir]
///   6. Instruction selection (tree IR -> insns)     [hvm]
///   7. Register allocation (linear scan)            [hvm]
///   8. Assembly (insns -> code-cache bytes)         [hvm]
///
/// Phases are observable: pass a TranslationArtifacts to capture each
/// stage's textual rendering (the Figure 1/2/3 benches are built on this).
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_TRANSLATE_H
#define VG_CORE_TRANSLATE_H

#include "frontend/Vg1Frontend.h"
#include "hvm/Exec.h"
#include "support/Profile.h"

#include <mutex>
#include <string>

namespace vg {

/// The tool's Phase 3 hook: transforms a flat superblock in place (tools
/// may rebuild the statement list arbitrarily).
using InstrumentFn = std::function<void(ir::IRSB &SB)>;

struct TranslationOptions {
  FrontendConfig Frontend;
  ir::SpecFn Spec;              ///< defaults to vg1SpecFn() when null
  InstrumentFn Instrument;      ///< null = no instrumentation (Nulgrind)
  bool RunOptimise1 = true;
  bool RunOptimise2 = true;
  bool Verify = false;          ///< typecheck IR between phases (tests)
  /// Guest-state Puts in this range survive redundancy elimination (the
  /// SP offset when a tool wants stack events, R7).
  ir::PreservedPuts Preserve;
  /// When set (--profile), each phase's wall time is recorded here.
  /// Guest-thread pipelines only: the Profiler is not thread-safe.
  Profiler *Prof = nullptr;
  /// Thread-private phase-time sink for background workers. When both this
  /// and Prof are set, samples land in both.
  PhaseTimes *PhaseOut = nullptr;
  /// Serialises Phase 3 across concurrent pipelines. Tools are stateful
  /// (Memcheck origin pools, Cachegrind cost centres), so when translation
  /// runs on worker threads every Instrument call for the same tool must
  /// hold this lock. Null for the single-threaded pipeline.
  std::mutex *InstrumentLock = nullptr;
  /// Tier 2: when Trace.Entries is non-empty, Phase 1 stitches the hot
  /// path into one superblock (disassembleTrace) and Phases 2/4 run the
  /// cross-seam optimisations — flag liveness across guarded side exits
  /// and ShadowProbe CSE. Entries[0] must equal the translated address.
  TraceSpec Trace;
  /// Sink for the trace passes' counters (--profile); may be null.
  ir::TraceOptStats *TraceStats = nullptr;
};

/// Optional capture of the intermediate representations of each phase.
struct TranslationArtifacts {
  std::string TreeIR;        ///< after phase 1
  std::string FlatIR;        ///< after phase 2
  std::string InstrumentedIR; ///< after phase 3
  std::string OptimisedIR;   ///< after phase 4
  std::string RebuiltTreeIR; ///< after phase 5
  std::string HostPreAlloc;  ///< after phase 6
  std::string HostPostAlloc; ///< after phase 7
  unsigned CoalescedMoves = 0;
  unsigned StmtsAfterInstrumentation = 0;
  unsigned StmtsAfterOptimise2 = 0;
};

/// Result of translating one block.
struct TranslatedBlock {
  hvm::CodeBlob Blob;
  DisasmResult Meta; ///< extents, instruction count, decode status
  /// Trace pipelines only: register allocation overflowed the executor
  /// frame (a stitched path can be much larger than any superblock). The
  /// blob is empty; the caller falls back to the constituent tier-1
  /// blocks. Plain superblocks still treat overflow as a fatal bug.
  bool SpillOverflow = false;
};

/// Runs the pipeline for the block at \p Addr. On IR verification failure
/// (Verify set) aborts with a diagnostic — translation bugs are
/// programmatic errors.
TranslatedBlock translateBlock(uint32_t Addr, const FetchFn &Fetch,
                               const TranslationOptions &Opts,
                               TranslationArtifacts *Art = nullptr);

} // namespace vg

#endif // VG_CORE_TRANSLATE_H
