//===-- core/Translate.cpp - The eight-phase translation pipeline ---------==//

#include "core/Translate.h"

#include "hvm/ISel.h"
#include "ir/IROpt.h"
#include "ir/IRPrinter.h"
#include "support/Errors.h"

using namespace vg;

namespace {

void verifyIR(const ir::IRSB &SB, bool Flat, const char *Phase) {
  std::string Diag = SB.typecheck(Flat);
  if (Diag.empty())
    return;
  std::fprintf(stderr, "IR verification failed after %s: %s\n%s", Phase,
               Diag.c_str(), ir::toString(SB).c_str());
  unreachable("translation produced ill-formed IR");
}

std::string renderHost(const hvm::HostCode &Code) {
  std::string Out;
  for (const hvm::HInstr &I : Code.Instrs) {
    Out += hvm::toString(I);
    Out += "\n";
  }
  return Out;
}

} // namespace

TranslatedBlock vg::translateBlock(uint32_t Addr, const FetchFn &Fetch,
                                   const TranslationOptions &Opts,
                                   TranslationArtifacts *Art) {
  const ir::SpecFn Spec = Opts.Spec ? Opts.Spec : vg1SpecFn();
  Profiler *Prof = Opts.Prof;

  // Phase 1: disassembly.
  DisasmResult Dis;
  {
    Profiler::Timer Tm(Prof, ProfPhase::Disasm);
    Dis = disassembleSB(Addr, Fetch, Opts.Frontend);
  }
  if (Opts.Verify)
    verifyIR(*Dis.SB, /*RequireFlat=*/false, "disassembly");
  if (Art)
    Art->TreeIR = ir::toString(*Dis.SB, ir::vg1OffsetName);

  // Phase 2: flatten + optimisation 1.
  std::unique_ptr<ir::IRSB> SB;
  {
    Profiler::Timer Tm(Prof, ProfPhase::Optimise1);
    SB = ir::flatten(*Dis.SB);
    if (Opts.RunOptimise1)
      ir::optimise1(*SB, Spec, Opts.Preserve);
  }
  if (Opts.Verify)
    verifyIR(*SB, /*RequireFlat=*/true, "optimisation 1");
  if (Art)
    Art->FlatIR = ir::toString(*SB, ir::vg1OffsetName);

  // Phase 3: instrumentation (the tool plug-in).
  if (Opts.Instrument) {
    {
      Profiler::Timer Tm(Prof, ProfPhase::Instrument);
      Opts.Instrument(*SB);
    }
    if (Opts.Verify)
      verifyIR(*SB, /*RequireFlat=*/true, "instrumentation");
    if (Art) {
      Art->InstrumentedIR = ir::toString(*SB, ir::vg1OffsetName);
      Art->StmtsAfterInstrumentation =
          static_cast<unsigned>(SB->stmts().size());
    }
  }

  // Phase 4: optimisation 2.
  if (Opts.RunOptimise2) {
    Profiler::Timer Tm(Prof, ProfPhase::Optimise2);
    ir::optimise2(*SB, Spec, Opts.Preserve);
  }
  if (Opts.Verify)
    verifyIR(*SB, /*RequireFlat=*/true, "optimisation 2");
  if (Art) {
    Art->OptimisedIR = ir::toString(*SB, ir::vg1OffsetName);
    Art->StmtsAfterOptimise2 = static_cast<unsigned>(SB->stmts().size());
  }

  // Phase 5: tree building.
  {
    Profiler::Timer Tm(Prof, ProfPhase::TreeBuild);
    ir::buildTrees(*SB);
  }
  if (Opts.Verify)
    verifyIR(*SB, /*RequireFlat=*/false, "tree building");
  if (Art)
    Art->RebuiltTreeIR = ir::toString(*SB, ir::vg1OffsetName);

  // Phase 6: instruction selection.
  hvm::HostCode Host;
  {
    Profiler::Timer Tm(Prof, ProfPhase::ISel);
    Host = hvm::selectInstructions(*SB);
  }
  if (Art)
    Art->HostPreAlloc = renderHost(Host);

  // Phase 7: register allocation.
  unsigned Coalesced;
  {
    Profiler::Timer Tm(Prof, ProfPhase::RegAlloc);
    Coalesced = hvm::allocateRegisters(Host);
  }
  if (Art) {
    Art->HostPostAlloc = renderHost(Host);
    Art->CoalescedMoves = Coalesced;
  }
  if (Host.NumSpillSlots > hvm::Executor::MaxSpillSlots)
    unreachable("translation needs more spill slots than the executor frame");

  // Phase 8: assembly.
  TranslatedBlock TB;
  {
    Profiler::Timer Tm(Prof, ProfPhase::Encode);
    TB.Blob.Bytes = hvm::encode(Host);
  }
  TB.Blob.NumSpillSlots = Host.NumSpillSlots;
  TB.Blob.NumChainSlots = Host.NumChainSlots;
  TB.Blob.ChainTargets = std::move(Host.ChainTargets);
  TB.Meta = std::move(Dis);
  TB.Meta.SB.reset(); // the IR is dead once code is emitted
  return TB;
}
