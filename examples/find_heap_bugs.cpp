//===-- examples/find_heap_bugs.cpp - Memcheck on a buggy program ---------==//
///
/// \file
/// A program with the classic heap-bug bestiary — use-after-free, double
/// free, buffer overrun, leak — run under Memcheck. Demonstrates the R8
/// machinery: the core redirects the program's malloc/free to its
/// replacement allocator (red zones, live-block tracking), and Memcheck's
/// event callbacks turn each mistake into a precise report.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "guestlib/GuestLib.h"
#include "tools/Memcheck.h"

#include <cstdio>

using namespace vg;
using namespace vg::vg1;

int main() {
  Assembler Code(0x1000);
  Assembler Data(0x100000);
  GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);
  Code.bind(Main);

  // Bug 1: heap overrun (write one past the end).
  Code.movi(Reg::R1, 16);
  Code.call(Lib.Malloc);
  Code.mov(Reg::R6, Reg::R0);
  Code.movi(Reg::R2, 7);
  Code.st(Reg::R6, 16, Reg::R2);

  // Bug 2: use after free.
  Code.mov(Reg::R1, Reg::R6);
  Code.call(Lib.Free);
  Code.ld(Reg::R3, Reg::R6, 0);

  // Bug 3: double free.
  Code.mov(Reg::R1, Reg::R6);
  Code.call(Lib.Free);

  // Bug 4: leak (pointer dropped on the floor).
  Code.movi(Reg::R1, 1000);
  Code.call(Lib.Malloc);
  Code.movi(Reg::R0, 0);
  Code.ret();

  GuestImage Img =
      GuestImageBuilder().addCode(Code).addData(Data).entry(Entry).build();

  Memcheck Tool;
  RunReport R = runUnderCore(Img, &Tool);
  std::printf("exit code: %d\n\n=== memcheck report ===\n%s", R.ExitCode,
              R.ToolOutput.c_str());
  return 0;
}
