file(REMOVE_RECURSE
  "CMakeFiles/test_guest.dir/GuestTests.cpp.o"
  "CMakeFiles/test_guest.dir/GuestTests.cpp.o.d"
  "test_guest"
  "test_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
