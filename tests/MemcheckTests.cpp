//===-- tests/MemcheckTests.cpp - Memcheck + shadow memory tests ----------==//
///
/// \file
/// Validates the flagship shadow-value tool: definedness tracking through
/// registers, memory, and the heap; addressability errors on red zones and
/// freed blocks; syscall parameter checking; leak detection; error
/// deduplication and suppressions; and the ShadowMap substrate itself.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "guestlib/GuestLib.h"
#include "shadow/ShadowMemory.h"
#include "tools/Memcheck.h"

#include <gtest/gtest.h>

using namespace vg;
using namespace vg::vg1;

namespace {

constexpr uint32_t CodeBase = 0x1000;
constexpr uint32_t DataBase = 0x100000;

GuestImage buildProgram(
    const std::function<void(Assembler &, Assembler &, GuestLibLabels &)>
        &Body) {
  Assembler Code(CodeBase);
  Assembler Data(DataBase);
  GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);
  Code.bind(Main);
  Code.symbol("main");
  Body(Code, Data, Lib);
  return GuestImageBuilder().addCode(Code).addData(Data).entry(Entry).build();
}

/// Runs under Memcheck; returns (report, #unique errors of each kind seen
/// in the tool output).
struct McRun {
  RunReport R;
  std::string Output;
  bool has(const char *Needle) const {
    return Output.find(Needle) != std::string::npos;
  }
};

McRun runMc(const GuestImage &Img,
            const std::vector<std::string> &Opts = {}) {
  Memcheck T;
  McRun M;
  M.R = runUnderCore(Img, &T, Opts);
  M.Output = M.R.ToolOutput;
  return M;
}

//===----------------------------------------------------------------------===//
// ShadowMap substrate
//===----------------------------------------------------------------------===//

TEST(ShadowMap, DefaultIsNoAccess) {
  ShadowMap SM;
  uint32_t Bad;
  EXPECT_FALSE(SM.isAddressable(0x1000, 4, Bad));
  EXPECT_EQ(Bad, 0x1000u);
  EXPECT_EQ(SM.chunksMaterialised(), 0u);
}

TEST(ShadowMap, RangeTransitions) {
  ShadowMap SM;
  SM.makeUndefined(0x1000, 64);
  uint32_t Bad;
  bool Unaddr;
  EXPECT_TRUE(SM.isAddressable(0x1000, 64, Bad));
  EXPECT_FALSE(SM.isDefined(0x1000, 64, Bad, Unaddr));
  EXPECT_FALSE(Unaddr);
  SM.makeDefined(0x1000, 64);
  EXPECT_TRUE(SM.isDefined(0x1000, 64, Bad, Unaddr));
  SM.makeNoAccess(0x1010, 8);
  EXPECT_FALSE(SM.isAddressable(0x1000, 64, Bad));
  EXPECT_EQ(Bad, 0x1010u);
  // Bytes around the hole unaffected.
  EXPECT_TRUE(SM.isDefined(0x1000, 16, Bad, Unaddr));
  EXPECT_TRUE(SM.isDefined(0x1018, 0x40 - 0x18, Bad, Unaddr));
}

TEST(ShadowMap, WholeChunkOpsStayDistinguished) {
  ShadowMap SM;
  // Chunk-aligned makeDefined uses the shared secondary: no materialise.
  SM.makeDefined(0x30000, ShadowMap::ChunkSize);
  EXPECT_EQ(SM.chunksMaterialised(), 0u);
  uint32_t Bad;
  bool Unaddr;
  EXPECT_TRUE(SM.isDefined(0x30000, ShadowMap::ChunkSize, Bad, Unaddr));
  // A partial write materialises exactly one chunk.
  SM.makeUndefined(0x30010, 4);
  EXPECT_EQ(SM.chunksMaterialised(), 1u);
}

TEST(ShadowMap, LoadStoreVbitsRoundTrip) {
  ShadowMap SM;
  SM.makeUndefined(0x2000, 16);
  AddrCheck Check;
  EXPECT_EQ(SM.loadV(0x2000, 4, Check), 0xFFFFFFFFull);
  EXPECT_TRUE(Check.Ok);
  SM.storeV(0x2000, 4, 0x00FF00FF, Check);
  EXPECT_TRUE(Check.Ok);
  AddrCheck C2;
  EXPECT_EQ(SM.loadV(0x2000, 4, C2), 0x00FF00FFull);
  // Partially unaddressable load: flags the first bad byte, reads 0xFF.
  SM.makeNoAccess(0x2002, 1);
  AddrCheck C3;
  uint64_t V = SM.loadV(0x2000, 4, C3);
  EXPECT_FALSE(C3.Ok);
  EXPECT_EQ(C3.FirstBad, 0x2002u);
  EXPECT_EQ((V >> 16) & 0xFF, 0xFFull);
}

TEST(ShadowMap, CopyRangeMovesBothPlanes) {
  ShadowMap SM;
  SM.makeUndefined(0x1000, 8);
  AddrCheck Check;
  SM.storeV(0x1000, 8, 0x1122334455667788ull, Check);
  SM.makeNoAccess(0x1004, 1);
  SM.copyRange(0x1000, 0x5000, 8);
  EXPECT_EQ(SM.vbyte(0x5001), 0x77);
  EXPECT_FALSE(SM.abit(0x5004));
  EXPECT_TRUE(SM.abit(0x5005));
}

TEST(DirectShadow, WindowSemantics) {
  DirectShadow DS(0x100000, 0x10000);
  EXPECT_TRUE(DS.covers(0x100000, 16));
  EXPECT_FALSE(DS.covers(0xFFFF0, 16));
  DS.makeDefined(0x100100, 64);
  AddrCheck Check;
  EXPECT_EQ(DS.loadV(0x100100, 8, Check), 0ull);
  EXPECT_TRUE(Check.Ok);
  // Outside the window: hard failure (the TaintTrace weakness).
  AddrCheck C2;
  DS.loadV(0x80000, 4, C2);
  EXPECT_FALSE(C2.Ok);
}

//===----------------------------------------------------------------------===//
// Definedness through registers and memory
//===----------------------------------------------------------------------===//

TEST(Memcheck, CleanProgramHasNoErrors) {
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &,
                                  GuestLibLabels &) {
    Code.movi(Reg::R1, 1);
    Code.movi(Reg::R2, 2);
    Code.add(Reg::R3, Reg::R1, Reg::R2);
    Code.cmpi(Reg::R3, 3);
    Label L = Code.newLabel();
    Code.beq(L);
    Code.bind(L);
    Code.movi(Reg::R0, 0);
    Code.ret();
  }));
  EXPECT_TRUE(M.R.Completed);
  EXPECT_TRUE(M.has("ERROR SUMMARY: 0 errors"));
}

TEST(Memcheck, BranchOnUninitStackLocal) {
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &,
                                  GuestLibLabels &) {
    Code.addi(Reg::SP, Reg::SP, -16); // allocate locals (undefined)
    Code.ld(Reg::R1, Reg::SP, 4);     // read uninitialised local
    Code.cmpi(Reg::R1, 0);            // flags now undefined
    Label L = Code.newLabel();
    Code.beq(L); // ERROR: conditional jump on uninit value
    Code.bind(L);
    Code.addi(Reg::SP, Reg::SP, 16);
    Code.movi(Reg::R0, 0);
    Code.ret();
  }));
  EXPECT_TRUE(M.R.Completed);
  EXPECT_TRUE(M.has("Conditional jump or move depends on uninitialised"))
      << M.Output;
}

TEST(Memcheck, InitialisedLocalIsClean) {
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &,
                                  GuestLibLabels &) {
    Code.addi(Reg::SP, Reg::SP, -16);
    Code.movi(Reg::R2, 42);
    Code.st(Reg::SP, 4, Reg::R2); // initialise first
    Code.ld(Reg::R1, Reg::SP, 4);
    Code.cmpi(Reg::R1, 0);
    Label L = Code.newLabel();
    Code.beq(L);
    Code.bind(L);
    Code.addi(Reg::SP, Reg::SP, 16);
    Code.movi(Reg::R0, 0);
    Code.ret();
  }));
  EXPECT_TRUE(M.has("ERROR SUMMARY: 0 errors")) << M.Output;
}

TEST(Memcheck, CopyingUninitialisedDataIsNotAnError) {
  // Memcheck's precision claim: merely moving undefined values around is
  // fine; only *dangerous uses* are flagged.
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &,
                                  GuestLibLabels &) {
    Code.addi(Reg::SP, Reg::SP, -32);
    Code.ld(Reg::R1, Reg::SP, 0);  // uninit
    Code.mov(Reg::R2, Reg::R1);    // copy: fine
    Code.add(Reg::R3, Reg::R1, Reg::R2); // arithmetic: fine
    Code.st(Reg::SP, 16, Reg::R3); // store back: fine
    Code.addi(Reg::SP, Reg::SP, 32);
    Code.movi(Reg::R0, 0);
    Code.ret();
  }));
  EXPECT_TRUE(M.has("ERROR SUMMARY: 0 errors")) << M.Output;
}

TEST(Memcheck, UninitTrackedThroughRegistersAndMemory) {
  // The footnote-1 point: definedness must survive a round trip through
  // registers and memory, then fire exactly at the eventual use.
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &Data,
                                  GuestLibLabels &) {
    Label Cell = Data.boundLabel();
    Data.emitZeros(8);
    Code.addi(Reg::SP, Reg::SP, -16);
    Code.ld(Reg::R1, Reg::SP, 0);          // uninit
    Code.shli(Reg::R2, Reg::R1, 4);        // derived: still uninit
    Code.movi(Reg::R3, Data.labelAddr(Cell));
    Code.st(Reg::R3, 0, Reg::R2);          // park in (defined) data cell
    Code.ld(Reg::R4, Reg::R3, 0);          // reload: uninit again
    Code.cmpi(Reg::R4, 7);
    Label L = Code.newLabel();
    Code.bne(L); // ERROR here, and only here
    Code.bind(L);
    Code.addi(Reg::SP, Reg::SP, 16);
    Code.movi(Reg::R0, 0);
    Code.ret();
  }));
  EXPECT_TRUE(M.has("Conditional jump or move")) << M.Output;
  EXPECT_TRUE(M.has("ERROR SUMMARY: 1 errors from 1 contexts")) << M.Output;
}

TEST(Memcheck, UninitAddressUse) {
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &,
                                  GuestLibLabels &) {
    Code.addi(Reg::SP, Reg::SP, -16);
    Code.ld(Reg::R1, Reg::SP, 0); // uninit
    // Mask it into a mapped data range so the access itself succeeds: the
    // *definedness of the address* is the error.
    Code.andi(Reg::R1, Reg::R1, 0xFFC);
    Code.addi(Reg::R1, Reg::R1, DataBase);
    Code.ld(Reg::R2, Reg::R1, 0); // ERROR: address depends on uninit
    Code.addi(Reg::SP, Reg::SP, 16);
    Code.movi(Reg::R0, 0);
    Code.ret();
  }));
  EXPECT_TRUE(M.has("Use of uninitialised value")) << M.Output;
}

//===----------------------------------------------------------------------===//
// Heap errors (R8)
//===----------------------------------------------------------------------===//

TEST(Memcheck, MallocMemoryIsUndefinedCallocIsDefined) {
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &,
                                  GuestLibLabels &Lib) {
    // calloc: branch on contents is fine.
    Code.movi(Reg::R1, 8);
    Code.movi(Reg::R2, 4);
    Code.call(Lib.Calloc);
    Code.mov(Reg::R7, Reg::R0); // keep for the free below
    Code.ld(Reg::R3, Reg::R0, 0);
    Code.cmpi(Reg::R3, 0);
    Label L1 = Code.newLabel();
    Code.beq(L1);
    Code.bind(L1);
    // malloc: branch on contents errors.
    Code.movi(Reg::R1, 32);
    Code.call(Lib.Malloc);
    Code.ld(Reg::R3, Reg::R0, 0);
    Code.cmpi(Reg::R3, 0);
    Label L2 = Code.newLabel();
    Code.beq(L2);
    Code.bind(L2);
    Code.mov(Reg::R1, Reg::R0);
    Code.call(Lib.Free);
    Code.mov(Reg::R1, Reg::R7);
    Code.call(Lib.Free);
    Code.movi(Reg::R0, 0);
    Code.ret();
  }));
  EXPECT_TRUE(M.has("Conditional jump or move")) << M.Output;
  EXPECT_TRUE(M.has("ERROR SUMMARY: 1 errors")) << M.Output;
}

TEST(Memcheck, HeapOverrunHitsRedZone) {
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &,
                                  GuestLibLabels &Lib) {
    Code.movi(Reg::R1, 16);
    Code.call(Lib.Malloc);
    Code.movi(Reg::R2, 1);
    Code.st(Reg::R0, 16, Reg::R2); // one past the end: red zone
    Code.ld(Reg::R3, Reg::R0, -4); // one before the start
    Code.movi(Reg::R0, 0);
    Code.ret();
  }));
  EXPECT_TRUE(M.has("Invalid write of size 4")) << M.Output;
  EXPECT_TRUE(M.has("Invalid read of size 4")) << M.Output;
}

TEST(Memcheck, UseAfterFree) {
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &,
                                  GuestLibLabels &Lib) {
    Code.movi(Reg::R1, 64);
    Code.call(Lib.Malloc);
    Code.mov(Reg::R6, Reg::R0);
    Code.movi(Reg::R2, 9);
    Code.st(Reg::R6, 0, Reg::R2);
    Code.mov(Reg::R1, Reg::R6);
    Code.call(Lib.Free);
    Code.ld(Reg::R3, Reg::R6, 0); // ERROR: read of freed block
    Code.movi(Reg::R0, 0);
    Code.ret();
  }));
  EXPECT_TRUE(M.has("Invalid read")) << M.Output;
}

TEST(Memcheck, DoubleFreeAndWildFree) {
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &,
                                  GuestLibLabels &Lib) {
    Code.movi(Reg::R1, 16);
    Code.call(Lib.Malloc);
    Code.mov(Reg::R6, Reg::R0);
    Code.mov(Reg::R1, Reg::R6);
    Code.call(Lib.Free);
    Code.mov(Reg::R1, Reg::R6);
    Code.call(Lib.Free); // ERROR: double free
    Code.movi(Reg::R1, DataBase + 128);
    Code.call(Lib.Free); // ERROR: never allocated
    Code.movi(Reg::R0, 0);
    Code.ret();
  }));
  EXPECT_TRUE(M.has("Invalid free")) << M.Output;
  EXPECT_TRUE(M.has("ERROR SUMMARY: 2 errors from 2 contexts")) << M.Output;
}

TEST(Memcheck, ReallocPreservesDefinedness) {
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &,
                                  GuestLibLabels &Lib) {
    Code.movi(Reg::R1, 8);
    Code.call(Lib.Malloc);
    Code.mov(Reg::R6, Reg::R0);
    Code.movi(Reg::R2, 5);
    Code.st(Reg::R6, 0, Reg::R2); // first word defined
    Code.mov(Reg::R1, Reg::R6);
    Code.movi(Reg::R2, 64);
    Code.call(Lib.Realloc);
    Code.mov(Reg::R6, Reg::R0);
    Code.ld(Reg::R3, Reg::R6, 0); // copied word: defined, branch OK
    Code.cmpi(Reg::R3, 5);
    Label L1 = Code.newLabel();
    Code.beq(L1);
    Code.bind(L1);
    Code.ld(Reg::R4, Reg::R6, 32); // fresh tail: undefined
    Code.cmpi(Reg::R4, 0);
    Label L2 = Code.newLabel();
    Code.beq(L2); // ERROR
    Code.bind(L2);
    Code.movi(Reg::R0, 0);
    Code.ret();
  }));
  EXPECT_TRUE(M.has("ERROR SUMMARY: 1 errors")) << M.Output;
}

//===----------------------------------------------------------------------===//
// Leaks
//===----------------------------------------------------------------------===//

TEST(Memcheck, LeakDetected) {
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &,
                                  GuestLibLabels &Lib) {
    Code.movi(Reg::R1, 100);
    Code.call(Lib.Malloc);
    Code.movi(Reg::R0, 0); // drop the only pointer
    Code.ret();
  }));
  EXPECT_TRUE(M.has("definitely lost: 100 bytes in 1 blocks")) << M.Output;
}

TEST(Memcheck, ReachableBlockNotLeaked) {
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &Data,
                                  GuestLibLabels &Lib) {
    Label Global = Data.boundLabel();
    Data.emitZeros(4);
    Code.movi(Reg::R1, 100);
    Code.call(Lib.Malloc);
    Code.movi(Reg::R3, Data.labelAddr(Global));
    Code.st(Reg::R3, 0, Reg::R0); // keep the pointer in a global
    Code.movi(Reg::R0, 0);
    Code.ret();
  }));
  EXPECT_TRUE(M.has("definitely lost: 0 bytes in 0 blocks")) << M.Output;
}

TEST(Memcheck, LeakCheckCanBeDisabled) {
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &,
                                  GuestLibLabels &Lib) {
                    Code.movi(Reg::R1, 100);
                    Code.call(Lib.Malloc);
                    Code.movi(Reg::R0, 0);
                    Code.ret();
                  }),
                  {"--leak-check=no"});
  EXPECT_FALSE(M.has("LEAK SUMMARY"));
  EXPECT_TRUE(M.has("in use at exit: 100 bytes in 1 blocks")) << M.Output;
}

//===----------------------------------------------------------------------===//
// Syscall checking (R4) and client requests
//===----------------------------------------------------------------------===//

TEST(Memcheck, SyscallReadingUninitBufferReported) {
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &,
                                  GuestLibLabels &Lib) {
    Code.movi(Reg::R1, 24);
    Code.call(Lib.Malloc);
    // write(1, uninit_buf, 8): the wrapper's pre_mem_read fires.
    Code.mov(Reg::R2, Reg::R0);
    Code.movi(Reg::R0, SysWrite);
    Code.movi(Reg::R1, 1);
    Code.movi(Reg::R3, 8);
    Code.sys();
    Code.movi(Reg::R0, 0);
    Code.ret();
  }));
  EXPECT_TRUE(M.has("Syscall parameter write(buf)")) << M.Output;
  EXPECT_TRUE(M.has("uninitialised")) << M.Output;
}

TEST(Memcheck, SyscallUninitArgumentRegister) {
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &,
                                  GuestLibLabels &) {
    Code.addi(Reg::SP, Reg::SP, -16);
    Code.ld(Reg::R1, Reg::SP, 0); // uninit value...
    Code.movi(Reg::R0, SysNanosleep);
    Code.sys(); // ...passed as a syscall argument register
    Code.addi(Reg::SP, Reg::SP, 16);
    Code.movi(Reg::R0, 0);
    Code.ret();
  }));
  EXPECT_TRUE(M.has("Syscall parameter")) << M.Output;
}

TEST(Memcheck, ClientRequestsManipulateShadowState) {
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &Data,
                                  GuestLibLabels &) {
    Label Cell = Data.boundLabel();
    Data.emitZeros(16);
    uint32_t CAddr = Data.labelAddr(Cell);
    // Make a defined global undefined, then branch on it: error.
    Code.movi(Reg::R0, McMakeMemUndefined);
    Code.movi(Reg::R1, CAddr);
    Code.movi(Reg::R2, 4);
    Code.clreq();
    // CHECK_MEM_IS_DEFINED reports the first bad address.
    Code.movi(Reg::R0, McCheckMemIsDefined);
    Code.movi(Reg::R1, CAddr);
    Code.movi(Reg::R2, 4);
    Code.clreq();
    Code.movi(Reg::R2, CAddr);
    Code.cmp(Reg::R0, Reg::R2);
    Label Bad = Code.newLabel();
    Code.bne(Bad);
    // Re-define it; check passes (returns 0).
    Code.movi(Reg::R0, McMakeMemDefined);
    Code.movi(Reg::R1, CAddr);
    Code.movi(Reg::R2, 4);
    Code.clreq();
    Code.movi(Reg::R0, McCheckMemIsDefined);
    Code.movi(Reg::R1, CAddr);
    Code.movi(Reg::R2, 4);
    Code.clreq();
    Code.ret(); // r0 == 0 on success
    Code.bind(Bad);
    Code.movi(Reg::R0, 1);
    Code.ret();
  }));
  EXPECT_TRUE(M.R.Completed);
  EXPECT_EQ(M.R.ExitCode, 0) << M.Output;
}

//===----------------------------------------------------------------------===//
// JIT-inlined shadow fast path
//===----------------------------------------------------------------------===//

TEST(Memcheck, InlineFastPathServicesAlignedWordTraffic) {
  // A loop of aligned, defined 4-byte loads and stores: the SHPROBE fast
  // path should absorb almost all of the shadow traffic, with identical
  // results (no errors, correct data flow).
  Memcheck T;
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &Data,
                                   GuestLibLabels &) {
    Label Buf = Data.boundLabel();
    Data.emitZeros(64); // defined data
    Code.movi(Reg::R6, Data.labelAddr(Buf));
    Code.movi(Reg::R7, 0); // i
    Code.movi(Reg::R8, 0); // sum
    Label Loop = Code.boundLabel();
    Code.ld(Reg::R1, Reg::R6, 0);       // aligned defined load
    Code.add(Reg::R8, Reg::R8, Reg::R1);
    Code.addi(Reg::R1, Reg::R1, 1);
    Code.st(Reg::R6, 0, Reg::R1);       // aligned defined store
    Code.addi(Reg::R7, Reg::R7, 1);
    Code.cmpi(Reg::R7, 100);
    Code.blt(Loop);
    // sum = 0+1+...+99 = 4950; exit 0 if correct.
    Code.cmpi(Reg::R8, 4950);
    Label Ok = Code.newLabel();
    Code.beq(Ok);
    Code.movi(Reg::R0, 1);
    Code.ret();
    Code.bind(Ok);
    Code.movi(Reg::R0, 0);
    Code.ret();
  });
  RunReport R = runUnderCore(Img, &T, {});
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.ExitCode, 0) << R.ToolOutput;
  EXPECT_NE(R.ToolOutput.find("ERROR SUMMARY: 0 errors"), std::string::npos)
      << R.ToolOutput;
  const ShadowStats &St = T.shadow().stats();
  EXPECT_GE(St.FastLoads, 100u) << "probe loads did not take the fast path";
  EXPECT_GE(St.FastStores, 100u) << "probe stores did not take the fast path";
}

TEST(Memcheck, FastPathDoesNotSwallowUndefinedLoads) {
  // The probe must punt on partially/fully undefined words so the helper
  // still returns exact V-bits and the eventual use still errors.
  Memcheck T;
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Code.addi(Reg::SP, Reg::SP, -16);
    Code.ld(Reg::R1, Reg::SP, 0); // aligned but undefined: probe punts
    Code.cmpi(Reg::R1, 0);
    Label L = Code.newLabel();
    Code.beq(L); // ERROR: branch on uninit
    Code.bind(L);
    Code.addi(Reg::SP, Reg::SP, 16);
    Code.movi(Reg::R0, 0);
    Code.ret();
  });
  RunReport R = runUnderCore(Img, &T, {});
  EXPECT_TRUE(R.Completed);
  EXPECT_NE(R.ToolOutput.find("Conditional jump or move"), std::string::npos)
      << R.ToolOutput;
  EXPECT_GE(T.shadow().stats().SlowLoads, 1u);
}

//===----------------------------------------------------------------------===//
// Error management
//===----------------------------------------------------------------------===//

TEST(Memcheck, RepeatedErrorsDeduplicated) {
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &,
                                  GuestLibLabels &) {
    Code.addi(Reg::SP, Reg::SP, -16);
    Code.movi(Reg::R6, 0);
    Label Loop = Code.boundLabel();
    Code.ld(Reg::R1, Reg::SP, 0);
    Code.cmpi(Reg::R1, 0); // same uninit branch, 50 times
    Label L = Code.newLabel();
    Code.beq(L);
    Code.bind(L);
    Code.addi(Reg::R6, Reg::R6, 1);
    Code.cmpi(Reg::R6, 50);
    Code.blt(Loop);
    Code.addi(Reg::SP, Reg::SP, 16);
    Code.movi(Reg::R0, 0);
    Code.ret();
  }));
  EXPECT_TRUE(M.has("ERROR SUMMARY: 50 errors from 1 contexts")) << M.Output;
}

TEST(Memcheck, SuppressionsSilenceErrors) {
  GuestImage Img = buildProgram([](Assembler &Code, Assembler &,
                                   GuestLibLabels &) {
    Code.addi(Reg::SP, Reg::SP, -16);
    Code.ld(Reg::R1, Reg::SP, 0);
    Code.cmpi(Reg::R1, 0);
    Label L = Code.newLabel();
    Code.beq(L);
    Code.bind(L);
    Code.addi(Reg::SP, Reg::SP, 16);
    Code.movi(Reg::R0, 0);
    Code.ret();
  });
  McRun M = runMc(Img, {"--suppressions=UninitCondition"});
  EXPECT_TRUE(M.has("ERROR SUMMARY: 0 errors from 0 contexts (suppressed: 1)"))
      << M.Output;
}

TEST(Memcheck, CleanHeapProgramFullyClean) {
  // A real little program: build a linked list, walk it, free it.
  McRun M = runMc(buildProgram([](Assembler &Code, Assembler &,
                                  GuestLibLabels &Lib) {
    // list head in r6; nodes: [value][next]
    Code.movi(Reg::R6, 0);
    Code.movi(Reg::R7, 0); // i
    Label Build = Code.boundLabel();
    Code.movi(Reg::R1, 8);
    Code.call(Lib.Malloc);
    Code.st(Reg::R0, 0, Reg::R7); // value = i
    Code.st(Reg::R0, 4, Reg::R6); // next = head
    Code.mov(Reg::R6, Reg::R0);
    Code.addi(Reg::R7, Reg::R7, 1);
    Code.cmpi(Reg::R7, 20);
    Code.blt(Build);
    // sum values
    Code.movi(Reg::R8, 0);
    Code.mov(Reg::R2, Reg::R6);
    Label Walk = Code.boundLabel();
    Code.cmpi(Reg::R2, 0);
    Label DoneWalk = Code.newLabel();
    Code.beq(DoneWalk);
    Code.ld(Reg::R3, Reg::R2, 0);
    Code.add(Reg::R8, Reg::R8, Reg::R3);
    Code.ld(Reg::R2, Reg::R2, 4);
    Code.jmp(Walk);
    Code.bind(DoneWalk);
    // free all
    Label FreeLoop = Code.boundLabel();
    Code.cmpi(Reg::R6, 0);
    Label DoneFree = Code.newLabel();
    Code.beq(DoneFree);
    Code.ld(Reg::R7, Reg::R6, 4); // next
    Code.mov(Reg::R1, Reg::R6);
    Code.call(Lib.Free);
    Code.mov(Reg::R6, Reg::R7);
    Code.jmp(FreeLoop);
    Code.bind(DoneFree);
    Code.cmpi(Reg::R8, 190); // sum 0..19
    Label Ok = Code.newLabel();
    Code.beq(Ok);
    Code.movi(Reg::R0, 1);
    Code.ret();
    Code.bind(Ok);
    Code.movi(Reg::R0, 0);
    Code.ret();
  }));
  EXPECT_TRUE(M.R.Completed);
  EXPECT_EQ(M.R.ExitCode, 0);
  EXPECT_TRUE(M.has("ERROR SUMMARY: 0 errors")) << M.Output;
  EXPECT_TRUE(M.has("in use at exit: 0 bytes in 0 blocks")) << M.Output;
}

} // namespace
