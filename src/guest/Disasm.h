//===-- guest/Disasm.h - VG1 disassembly printing ---------------*- C++ -*-==//
///
/// \file
/// Textual rendering of decoded VG1 instructions, used by the Figure 1
/// reproduction, error reports, and debugging output.
///
//===----------------------------------------------------------------------===//
#ifndef VG_GUEST_DISASM_H
#define VG_GUEST_DISASM_H

#include "guest/GuestArch.h"

#include <string>

namespace vg {
namespace vg1 {

/// Renders one decoded instruction, e.g. "ldx r3, [r4 + r5<<2 + 0x10]".
std::string toString(const Instr &I);

/// Disassembles and renders a range of guest bytes as an address-prefixed
/// listing. Stops at the first undecodable byte.
std::string disassembleRange(const uint8_t *Bytes, size_t Len,
                             uint32_t BaseAddr);

} // namespace vg1
} // namespace vg

#endif // VG_GUEST_DISASM_H
