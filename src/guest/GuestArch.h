//===-- guest/GuestArch.h - The VG1 guest architecture ----------*- C++ -*-==//
///
/// \file
/// Defines the synthetic guest ISA ("VG1") that stands in for x86 in this
/// reproduction. VG1 is deliberately CISC-flavoured in the ways that matter
/// to the paper:
///
///  - variable-length instruction encodings (1..10 bytes), so IMark lengths
///    are meaningful;
///  - condition codes (NZCV) set as a *side effect* of most ALU operations,
///    which the D&R front end must synthesise explicitly via a CC thunk
///    (CC_OP/CC_DEP1/CC_DEP2), exactly as Valgrind models x86 %eflags
///    (Section 3.7);
///  - a scaled-index addressing mode (LDX/STX) that expands to multiple IR
///    operations, exposing intermediate address values to tools (R3);
///  - FP (F64) and packed-SIMD (4x8-bit lanes) instructions, because the
///    paper stresses that analysis code must be as expressive as client
///    code (Section 5.3);
///  - an unusual architecture-specific instruction (CPUINFO, standing in
///    for x86 cpuid) that the front end handles with an annotated dirty
///    helper call instead of explicit IR (Section 3.6).
///
/// The file also fixes the guest-state layout used by the ThreadState: guest
/// registers first, then (at ShadowOffset) a full shadow copy, making shadow
/// registers first-class (R1).
///
//===----------------------------------------------------------------------===//
#ifndef VG_GUEST_GUESTARCH_H
#define VG_GUEST_GUESTARCH_H

#include <cstdint>

namespace vg {
namespace vg1 {

//===----------------------------------------------------------------------===//
// Registers
//===----------------------------------------------------------------------===//

constexpr unsigned NumGPRs = 16;
constexpr unsigned NumFPRs = 8;

/// r14 is the stack pointer by ABI convention; r15 the link register.
constexpr unsigned RegSP = 14;
constexpr unsigned RegLR = 15;

//===----------------------------------------------------------------------===//
// Guest-state layout (byte offsets into the ThreadState guest area).
//
// The shadow state is a full mirror image at ShadowOffset; a tool GETs the
// shadow of r3 simply by reading offset gpr(3) + ShadowOffset. This is what
// makes shadow registers first-class entities (Section 4, R1).
//===----------------------------------------------------------------------===//
namespace gso {
constexpr uint32_t R0 = 0; // 16 GPRs, 4 bytes each: 0..63
constexpr uint32_t PC = 64;
constexpr uint32_t CC_OP = 68;
constexpr uint32_t CC_DEP1 = 72;
constexpr uint32_t CC_DEP2 = 76;
constexpr uint32_t CC_NDEP = 80;
constexpr uint32_t F0 = 88; // 8 FPRs, 8 bytes each: 88..151
constexpr uint32_t EMNOTE = 152;
constexpr uint32_t GuestStateSize = 160;
/// Offset of the shadow copy of the whole guest state.
constexpr uint32_t ShadowOffset = 192;
/// Total per-thread state area (guest + shadow).
constexpr uint32_t TotalSize = ShadowOffset + GuestStateSize; // 352

constexpr uint32_t gpr(unsigned I) { return R0 + 4 * I; }
constexpr uint32_t fpr(unsigned I) { return F0 + 8 * I; }
} // namespace gso

//===----------------------------------------------------------------------===//
// Condition codes
//===----------------------------------------------------------------------===//

/// NZCV flag bits as packed into a computed flags word.
constexpr uint32_t FlagN = 8;
constexpr uint32_t FlagZ = 4;
constexpr uint32_t FlagC = 2;
constexpr uint32_t FlagV = 1;

/// CC thunk operation kinds. After an ALU instruction the front end stores
/// (CCOp, operand1, operand2) into the thunk instead of eagerly computing
/// NZCV; flags are materialised lazily by calcNZCV, and the IR optimiser
/// can partially evaluate uses when CC_OP is a known constant.
enum class CCOp : uint32_t {
  Copy = 0,  ///< CC_DEP1 already holds the NZCV bits (used by FCMP).
  Add = 1,   ///< Flags of DEP1 + DEP2.
  Sub = 2,   ///< Flags of DEP1 - DEP2 (C set means "no borrow", ARM-style).
  Logic = 3, ///< Flags of a logical result held in DEP1 (C = V = 0).
};

/// Branch condition kinds (Bcc instruction suffixes).
enum class Cond : uint8_t {
  EQ = 0, ///< Z
  NE = 1, ///< !Z
  LTS = 2, ///< N != V
  GES = 3, ///< N == V
  LTU = 4, ///< !C
  GEU = 5, ///< C
  GTS = 6, ///< !Z && N == V
  LES = 7, ///< Z || N != V
  MI = 8, ///< N
  PL = 9, ///< !N
};
constexpr unsigned NumConds = 10;

/// Materialises the NZCV flag word from a CC thunk. This is also the body
/// of the IR helper the front end calls (see frontend/Vg1Frontend.cpp).
inline uint32_t calcNZCV(uint32_t Op, uint32_t Dep1, uint32_t Dep2) {
  uint32_t N = 0, Z = 0, C = 0, V = 0, Res;
  switch (static_cast<CCOp>(Op)) {
  case CCOp::Copy:
    return Dep1 & 0xF;
  case CCOp::Add:
    Res = Dep1 + Dep2;
    N = Res >> 31;
    Z = Res == 0;
    C = Res < Dep1; // carry out
    V = ((Dep1 ^ ~Dep2) & (Dep1 ^ Res)) >> 31;
    break;
  case CCOp::Sub:
    Res = Dep1 - Dep2;
    N = Res >> 31;
    Z = Res == 0;
    C = Dep1 >= Dep2; // C set == no borrow
    V = ((Dep1 ^ Dep2) & (Dep1 ^ Res)) >> 31;
    break;
  case CCOp::Logic:
    Res = Dep1;
    N = Res >> 31;
    Z = Res == 0;
    break;
  }
  return (N ? FlagN : 0) | (Z ? FlagZ : 0) | (C ? FlagC : 0) | (V ? FlagV : 0);
}

/// Evaluates condition \p CondKind against a flag word.
inline bool condHolds(Cond CondKind, uint32_t NZCV) {
  bool N = NZCV & FlagN, Z = NZCV & FlagZ, C = NZCV & FlagC, V = NZCV & FlagV;
  switch (CondKind) {
  case Cond::EQ:
    return Z;
  case Cond::NE:
    return !Z;
  case Cond::LTS:
    return N != V;
  case Cond::GES:
    return N == V;
  case Cond::LTU:
    return !C;
  case Cond::GEU:
    return C;
  case Cond::GTS:
    return !Z && N == V;
  case Cond::LES:
    return Z || N != V;
  case Cond::MI:
    return N;
  case Cond::PL:
    return !N;
  }
  return false;
}

/// One-call helper used both by the reference interpreter and by the IR
/// helper call the front end emits for conditional branches.
inline uint32_t calcCond(uint32_t CondKind, uint32_t Op, uint32_t Dep1,
                         uint32_t Dep2) {
  return condHolds(static_cast<Cond>(CondKind), calcNZCV(Op, Dep1, Dep2)) ? 1
                                                                          : 0;
}

//===----------------------------------------------------------------------===//
// Opcodes and encodings
//
// Encodings (r:r means two 4-bit register fields packed into one byte,
// immediates are little-endian):
//   NOP/HLT/RET/SYS/CPUINFO/CLREQ      [op]                         len 1
//   MOV rd,rs / JMPR / CALLR / PUSH /
//   POP / FNEG / FITOD / FDTOI / FCMP
//   / FMOV                             [op][a:b]                    len 2
//   ALU3 rd,rs,rt / F-ALU3 / V-ALU3    [op][rd:rs][rt:0]            len 3
//   SHLI/SHRI/SARI rd,rs,imm8          [op][rd:rs][imm8]            len 3
//   LD/ST/LDB../FLD/FST  [r+disp16]    [op][a:b][disp16]            len 4
//   JMP/CALL/Bcc target32              [op][target32]               len 5
//   MOVI rd,imm32 / CMPI rs,imm32      [op][r:0][imm32]             len 6
//   ADDI/ANDI rd,rs,imm32              [op][rd:rs][imm32]           len 6
//   LDX/STX [rs+rt<<sc+disp32]         [op][a:b][c:d][disp32]       len 7
//   FMOVI fd,imm64                     [op][fd:0][imm64]            len 10
//===----------------------------------------------------------------------===//

enum class Opcode : uint8_t {
  NOP = 0x00,
  HLT = 0x01,
  MOVI = 0x02,
  MOV = 0x03,
  ADD = 0x04,
  SUB = 0x05,
  AND = 0x06,
  OR = 0x07,
  XOR = 0x08,
  SHL = 0x09,
  SHR = 0x0A,
  SAR = 0x0B,
  MUL = 0x0C, // no flag update
  DIVU = 0x0D, // no flag update
  DIVS = 0x0E, // no flag update
  ADDI = 0x0F,
  CMP = 0x10,
  CMPI = 0x11,
  LD = 0x12,
  ST = 0x13,
  LDX = 0x14,
  STX = 0x15,
  LDB = 0x16,
  LDSB = 0x17,
  STB = 0x18,
  LDH = 0x19,
  LDSH = 0x1A,
  STH = 0x1B,
  SHLI = 0x1C,
  SHRI = 0x1D,
  SARI = 0x1E,
  ANDI = 0x1F,
  BCC = 0x20, // 0x20 + Cond, occupies 0x20..0x29
  JMP = 0x2E,
  JMPR = 0x2F,
  CALL = 0x30,
  CALLR = 0x31,
  RET = 0x32,
  PUSH = 0x33,
  POP = 0x34,
  SYS = 0x35,
  CPUINFO = 0x36,
  CLREQ = 0x37,
  FADD = 0x40,
  FSUB = 0x41,
  FMUL = 0x42,
  FDIV = 0x43,
  FNEG = 0x44,
  FLD = 0x45,
  FST = 0x46,
  FITOD = 0x47,
  FDTOI = 0x48,
  FCMP = 0x49,
  FMOVI = 0x4A,
  FMOV = 0x4B,
  VADD8 = 0x50,
  VSUB8 = 0x51,
  VCMPGT8 = 0x52,
};

/// Values CPUINFO deposits in r0/r1 (emulated via a dirty helper under DBI).
constexpr uint32_t CpuInfoMagic = 0x56473100; // "VG1\0"
constexpr uint32_t CpuInfoVersion = 1;

/// A decoded VG1 instruction.
struct Instr {
  Opcode Op = Opcode::NOP;
  uint8_t Len = 0;
  uint8_t Rd = 0, Rs = 0, Rt = 0;
  uint8_t Scale = 0;    ///< LDX/STX index scale (0..3, shift amount)
  Cond BCond = Cond::EQ; ///< Bcc only
  int32_t Imm = 0;       ///< imm32 / disp / imm8 / branch target
  uint64_t Imm64 = 0;    ///< FMOVI payload (IEEE754 bits)
};

/// Whether \p Op writes the condition-code thunk.
inline bool opSetsFlags(Opcode Op) {
  switch (Op) {
  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::AND:
  case Opcode::OR:
  case Opcode::XOR:
  case Opcode::SHL:
  case Opcode::SHR:
  case Opcode::SAR:
  case Opcode::ADDI:
  case Opcode::ANDI:
  case Opcode::SHLI:
  case Opcode::SHRI:
  case Opcode::SARI:
  case Opcode::CMP:
  case Opcode::CMPI:
  case Opcode::FCMP:
    return true;
  default:
    return false;
  }
}

} // namespace vg1
} // namespace vg

#endif // VG_GUEST_GUESTARCH_H
