//===-- core/Translate.cpp - The eight-phase translation pipeline ---------==//

#include "core/Translate.h"

#include "guest/GuestArch.h"
#include "hvm/ISel.h"
#include "ir/IROpt.h"
#include "ir/IRPrinter.h"
#include "support/Errors.h"

#include <algorithm>
#include <chrono>

using namespace vg;

namespace {

/// RAII phase timer with two optional sinks: the (guest-thread-only)
/// Profiler and a thread-private PhaseTimes. Background workers pass only
/// the latter; the guest thread merges it at install time.
class PhaseTimer {
public:
  PhaseTimer(Profiler *Prof, PhaseTimes *Out, ProfPhase Ph)
      : Prof(Prof), Out(Out), Ph(Ph),
        T0((Prof || Out) ? now() : 0) {}
  ~PhaseTimer() {
    if (!Prof && !Out)
      return;
    double S = now() - T0;
    if (Prof)
      Prof->notePhase(Ph, S);
    if (Out)
      Out->add(Ph, S);
  }
  PhaseTimer(const PhaseTimer &) = delete;
  PhaseTimer &operator=(const PhaseTimer &) = delete;

private:
  static double now() {
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(Clock::now().time_since_epoch())
        .count();
  }
  Profiler *Prof;
  PhaseTimes *Out;
  ProfPhase Ph;
  double T0;
};

void verifyIR(const ir::IRSB &SB, bool Flat, const char *Phase) {
  std::string Diag = SB.typecheck(Flat);
  if (Diag.empty())
    return;
  std::fprintf(stderr, "IR verification failed after %s: %s\n%s", Phase,
               Diag.c_str(), ir::toString(SB).c_str());
  unreachable("translation produced ill-formed IR");
}

std::string renderHost(const hvm::HostCode &Code) {
  std::string Out;
  for (const hvm::HInstr &I : Code.Instrs) {
    Out += hvm::toString(I);
    Out += "\n";
  }
  return Out;
}

} // namespace

TranslatedBlock vg::translateBlock(uint32_t Addr, const FetchFn &Fetch,
                                   const TranslationOptions &Opts,
                                   TranslationArtifacts *Art) {
  const ir::SpecFn Spec = Opts.Spec ? Opts.Spec : vg1SpecFn();
  Profiler *Prof = Opts.Prof;
  PhaseTimes *Out = Opts.PhaseOut;

  const bool IsTrace = !Opts.Trace.Entries.empty();

  // Phase 1: disassembly.
  DisasmResult Dis;
  {
    PhaseTimer Tm(Prof, Out, ProfPhase::Disasm);
    Dis = IsTrace ? disassembleTrace(Opts.Trace, Fetch, Opts.Frontend)
                  : disassembleSB(Addr, Fetch, Opts.Frontend);
  }
  if (Opts.Verify)
    verifyIR(*Dis.SB, /*RequireFlat=*/false, "disassembly");
  if (Art)
    Art->TreeIR = ir::toString(*Dis.SB, ir::vg1OffsetName);

  // Trace pipelines: prove the CC thunk dead at whichever exit targets
  // allow it, so DeadPut can treat side exits as jumps with known
  // downstream liveness rather than barriers. The scanned bytes join the
  // extents: if the proof's code changes, the trace dies with it.
  ir::TraceOptConfig TraceCfg;
  if (IsTrace) {
    TraceCfg.PCLo = vg1::gso::PC;
    TraceCfg.PCHi = vg1::gso::PC + 4;
    TraceCfg.CCLo = vg1::gso::CC_OP;
    TraceCfg.CCHi = vg1::gso::CC_NDEP + 4;
    TraceCfg.ShadowOffset = vg1::gso::ShadowOffset;
    TraceCfg.Stats = Opts.TraceStats;
    std::vector<uint32_t> Cands;
    for (const ir::Stmt *S : Dis.SB->stmts())
      if (S->Kind == ir::StmtKind::Exit && S->JK == ir::JumpKind::Boring)
        Cands.push_back(S->DstPC);
    uint32_t FinalPC = ~0u;
    if (Dis.SB->next()->isConst() &&
        Dis.SB->endJumpKind() == ir::JumpKind::Boring)
      Cands.push_back(FinalPC =
                          static_cast<uint32_t>(Dis.SB->next()->ConstVal));
    std::sort(Cands.begin(), Cands.end());
    Cands.erase(std::unique(Cands.begin(), Cands.end()), Cands.end());
    std::vector<std::pair<uint32_t, uint32_t>> Scanned;
    for (uint32_t T : Cands)
      if (flagsDeadAt(T, Fetch, Scanned))
        TraceCfg.FlagsDeadTargets.push_back(T);
    TraceCfg.FlagsDeadAtEnd =
        FinalPC != ~0u && TraceCfg.flagsDeadAtTarget(FinalPC);
    Dis.Extents.insert(Dis.Extents.end(), Scanned.begin(), Scanned.end());
  }
  const ir::TraceOptConfig *TC = IsTrace ? &TraceCfg : nullptr;

  // Phase 2: flatten + optimisation 1.
  std::unique_ptr<ir::IRSB> SB;
  {
    PhaseTimer Tm(Prof, Out, ProfPhase::Optimise1);
    SB = ir::flatten(*Dis.SB);
    if (Opts.RunOptimise1)
      ir::optimise1(*SB, Spec, Opts.Preserve, TC);
  }
  if (Opts.Verify)
    verifyIR(*SB, /*RequireFlat=*/true, "optimisation 1");
  if (Art)
    Art->FlatIR = ir::toString(*SB, ir::vg1OffsetName);

  // Phase 3: instrumentation (the tool plug-in). Tools are stateful, so
  // concurrent pipelines for the same tool serialise here.
  if (Opts.Instrument) {
    {
      std::unique_lock<std::mutex> ToolLock;
      if (Opts.InstrumentLock)
        ToolLock = std::unique_lock<std::mutex>(*Opts.InstrumentLock);
      PhaseTimer Tm(Prof, Out, ProfPhase::Instrument);
      Opts.Instrument(*SB);
    }
    if (Opts.Verify)
      verifyIR(*SB, /*RequireFlat=*/true, "instrumentation");
    if (Art) {
      Art->InstrumentedIR = ir::toString(*SB, ir::vg1OffsetName);
      Art->StmtsAfterInstrumentation =
          static_cast<unsigned>(SB->stmts().size());
    }
  }

  // Phase 4: optimisation 2.
  if (Opts.RunOptimise2) {
    PhaseTimer Tm(Prof, Out, ProfPhase::Optimise2);
    ir::optimise2(*SB, Spec, Opts.Preserve, TC);
  }
  if (Opts.Verify)
    verifyIR(*SB, /*RequireFlat=*/true, "optimisation 2");
  if (Art) {
    Art->OptimisedIR = ir::toString(*SB, ir::vg1OffsetName);
    Art->StmtsAfterOptimise2 = static_cast<unsigned>(SB->stmts().size());
  }

  // Phase 5: tree building.
  {
    PhaseTimer Tm(Prof, Out, ProfPhase::TreeBuild);
    ir::buildTrees(*SB);
  }
  if (Opts.Verify)
    verifyIR(*SB, /*RequireFlat=*/false, "tree building");
  if (Art)
    Art->RebuiltTreeIR = ir::toString(*SB, ir::vg1OffsetName);

  // Phase 6: instruction selection.
  hvm::HostCode Host;
  {
    PhaseTimer Tm(Prof, Out, ProfPhase::ISel);
    Host = hvm::selectInstructions(*SB);
  }
  if (Art)
    Art->HostPreAlloc = renderHost(Host);

  // Phase 7: register allocation.
  unsigned Coalesced;
  {
    PhaseTimer Tm(Prof, Out, ProfPhase::RegAlloc);
    Coalesced = hvm::allocateRegisters(Host);
  }
  if (Art) {
    Art->HostPostAlloc = renderHost(Host);
    Art->CoalescedMoves = Coalesced;
  }
  if (Host.NumSpillSlots > hvm::Executor::MaxSpillSlots) {
    if (IsTrace) {
      // A stitched path can legitimately outgrow the executor frame; the
      // caller keeps running the constituent tier-1 blocks instead.
      TranslatedBlock TB;
      TB.SpillOverflow = true;
      TB.Meta = std::move(Dis);
      TB.Meta.SB.reset();
      return TB;
    }
    unreachable("translation needs more spill slots than the executor frame");
  }

  // Phase 8: assembly.
  TranslatedBlock TB;
  {
    PhaseTimer Tm(Prof, Out, ProfPhase::Encode);
    TB.Blob.Bytes = hvm::encode(Host);
  }
  TB.Blob.NumSpillSlots = Host.NumSpillSlots;
  TB.Blob.NumChainSlots = Host.NumChainSlots;
  TB.Blob.ChainTargets = std::move(Host.ChainTargets);
  TB.Blob.TerminalChainSlot = Host.TerminalChainSlot;
  TB.Meta = std::move(Dis);
  TB.Meta.SB.reset(); // the IR is dead once code is emitted
  return TB;
}
