//===-- ir/IROpt.h - IR optimisation passes ---------------------*- C++ -*-==//
///
/// \file
/// The translation pipeline's IR phases (Section 3.7):
///
///  - flatten():   Phase 2 entry — tree IR to flat IR (all statement
///                 operands become atoms: temporaries or constants).
///  - optimise1(): Phase 2 body — redundant Get/Put elimination, copy and
///                 constant propagation, constant folding, CSE, dead code
///                 removal, and partial evaluation of platform-specific
///                 helper calls via a callback (the %eflags trick).
///  - optimise2(): Phase 4 — the cheaper post-instrumentation cleanup
///                 (constant folding, copy propagation, dead code removal),
///                 which lets tools emit somewhat simple-minded code.
///  - buildTrees(): Phase 5 — substitutes single-use temporaries into their
///                 use sites to rebuild expression trees for instruction
///                 selection. Loads are never moved past stores.
///
//===----------------------------------------------------------------------===//
#ifndef VG_IR_IROPT_H
#define VG_IR_IROPT_H

#include "ir/IR.h"

#include <functional>
#include <memory>

namespace vg {
namespace ir {

/// Partial-evaluation hook for clean helper calls (Section 3.7 Phase 2:
/// "callback functions that can partially evaluate certain platform-specific
/// C helper calls"). Invoked for CCalls whose arguments are atoms; may build
/// and return a replacement expression in \p SB, or null to keep the call.
using SpecFn =
    std::function<Expr *(IRSB &SB, const Callee *C,
                         const std::vector<Expr *> &Args)>;

/// Tree IR -> flat IR (fresh superblock).
std::unique_ptr<IRSB> flatten(const IRSB &In);

/// Guest-state byte range whose Puts must never be removed as redundant.
/// Used for the stack pointer when stack-allocation events are wanted
/// (R7): every SP write must remain visible to the core's SP-tracking
/// instrumentation, mirroring Valgrind's special treatment of guest_SP.
struct PreservedPuts {
  uint32_t Lo = 0, Hi = 0; // empty by default
  bool covers(uint32_t Offset) const { return Offset >= Lo && Offset < Hi; }
};

/// Counters filled by the trace-only passes; surfaced via --profile.
struct TraceOptStats {
  uint64_t DeadFlagPuts = 0; ///< CC-thunk Puts killed by cross-seam liveness
  uint64_t ProbesCSEd = 0;   ///< duplicate ShadowProbe loads rewritten
};

/// Cross-block optimisation context for trace-tier (tier 2) translations.
/// When passed to optimise1/optimise2, DeadPut treats every side exit as a
/// jump with known downstream liveness instead of a full barrier, and
/// optimise2 additionally CSEs repeated ShadowProbe loads across former
/// block seams. The fields describe guest-state geometry so the IR layer
/// stays guest-agnostic; the translation pipeline fills them from gso::*.
struct TraceOptConfig {
  /// Guest PC slot [PCLo, PCHi). Every exit — taken side exit or block
  /// end, immediate or register form — rewrites the PC in the executor,
  /// so a Put to it still pending at an exit is dead on the taken path.
  uint32_t PCLo = 0, PCHi = 0;
  /// Condition-code thunk [CCLo, CCHi): dead at a Boring exit whose
  /// target provably overwrites the whole thunk before reading any of it
  /// (vg1::flagsDeadAt). The bytes the proof scanned are part of the
  /// trace's extents, so SMC on them invalidates the trace.
  uint32_t CCLo = 0, CCHi = 0;
  /// Shadow-register mirror distance (0 = no mirror dead-ranging). The
  /// mirror of a dead CC range is equally dead: instrumentation mirrors
  /// guest thunk Puts, so a target that overwrites the thunk before
  /// reading it overwrites the shadow thunk first.
  uint32_t ShadowOffset = 0;
  /// Boring-exit targets at which the CC thunk is dead.
  std::vector<uint32_t> FlagsDeadTargets;
  /// The terminal next is a Boring constant whose target is flags-dead.
  bool FlagsDeadAtEnd = false;
  TraceOptStats *Stats = nullptr;

  bool flagsDeadAtTarget(uint32_t PC) const {
    for (uint32_t T : FlagsDeadTargets)
      if (T == PC)
        return true;
    return false;
  }
};

/// Full Phase-2 optimisation on flat IR, in place. \p Spec may be null.
/// \p Trace (null for superblocks) enables the cross-seam extensions.
void optimise1(IRSB &SB, const SpecFn &Spec,
               const PreservedPuts &Preserve = PreservedPuts(),
               const TraceOptConfig *Trace = nullptr);

/// Cheaper Phase-4 optimisation on flat IR, in place. \p Spec may be null
/// (tools' instrumentation also benefits from helper specialisation).
void optimise2(IRSB &SB, const SpecFn &Spec,
               const PreservedPuts &Preserve = PreservedPuts(),
               const TraceOptConfig *Trace = nullptr);

/// Flat IR -> tree IR, in place (Phase 5).
void buildTrees(IRSB &SB);

/// Self-test hook for the differential fuzzer (vgfuzz --self-test): plants
/// a deliberate miscompile in simplify() so the harness can prove it
/// catches real optimiser bugs. 0 = off (the default; release behaviour).
/// Kind 1: folds Add32(x, 1) to x — loop increments silently vanish.
void setFuzzPlant(int Kind);
int fuzzPlant();

} // namespace ir
} // namespace vg

#endif // VG_IR_IROPT_H
