//===-- fuzz/DiffRunner.h - Oracle-vs-JIT differential executor -*- C++ -*-==//
///
/// \file
/// Runs one generated program N ways — the reference interpreter as oracle,
/// then the full JIT pipeline across the optimisation/chaining/hot-promotion
/// matrix and under each tool — and compares everything the guest can
/// observe about itself: stdout (which carries the register dump, flag
/// probes, FP dump and memory checksum the generator's epilogue emits),
/// exit status, and completion. On top of that it checks per-config
/// invariants the tools define: ICnt's instruction count must equal the
/// oracle's retired-instruction count, Memcheck must be error-free on
/// hygienic programs, and SMC programs must force at least one
/// retranslation.
///
//===----------------------------------------------------------------------===//
#ifndef VG_FUZZ_DIFFRUNNER_H
#define VG_FUZZ_DIFFRUNNER_H

#include "core/Launcher.h"
#include "fuzz/ProgramGen.h"

namespace vg {
namespace fuzz {

/// One cell of the config matrix.
struct FuzzConfig {
  std::string Name;
  std::string ToolName; ///< nulgrind|icnt|icntc|memcheck|cachegrind|
                        ///< taintgrind|loopgrind
  std::vector<std::string> Opts;
  bool CheckInsnCount = false;     ///< ICnt count == oracle instruction count
  bool CheckMemcheckClean = false; ///< zero unique Memcheck errors expected
  /// SMC programs must show >= 1 SmcFail retranslation. Only asserted in
  /// cells without aggressive hot promotion: a tiny --hot-threshold lets
  /// the re-executed block be *hot-retranslated* from the already-patched
  /// bytes, which is correct behaviour (the guest sees new code) but never
  /// takes the SmcFail path. Data transparency is still checked everywhere
  /// via the stdout comparison.
  bool CheckSmcRetrans = true;
  /// Run the program twice against one fresh --tt-cache directory: the
  /// first (cold) run populates it, the second (warm) run installs from it.
  /// Both runs are diffed against the oracle; warm divergences are reported
  /// under "<name>-warm". Exercises serialize -> deserialize -> install for
  /// every translation the program produces.
  bool CacheTwice = false;
  /// Like CacheTwice, but through a live translation server: an in-process
  /// vgserve daemon is started on a fresh socket over a fresh directory,
  /// the cold run warms it via write-back PUTs, and the warm run installs
  /// its translations over the wire (validated client-side). Exercises
  /// encode -> frame -> serve -> decode -> install end to end; both runs
  /// must still match the oracle bit for bit.
  bool ServeTwice = false;
};

/// One observed disagreement between the oracle and a config.
struct Divergence {
  std::string Config; ///< matrix cell name, or "oracle" for oracle failures
  std::string Field;  ///< stdout|exit|completed|fatalsig|icnt|mc-errors|smc
  std::string Expect, Got;

  std::string describe() const {
    return Config + ": " + Field + ": expected [" + Expect + "] got [" + Got +
           "]";
  }
};

struct DiffResult {
  std::vector<Divergence> Divs;
  bool ok() const { return Divs.empty(); }
};

/// The default matrix. Signal/SMC-aware: SMC programs get --smc-check=all
/// everywhere; fault-injection seeds derive from the program seed and only
/// use observation-neutral kinds (preempt/ttflush, + sigstorm when the
/// program installs handlers).
std::vector<FuzzConfig> defaultMatrix(const FuzzProgram &P);

/// Executes the oracle once and every config against it.
DiffResult diffRun(const FuzzProgram &P, const std::vector<FuzzConfig> &M);

/// Executes the oracle plus a single config (the shrinker's predicate).
DiffResult diffRunOne(const FuzzProgram &P, const FuzzConfig &C);

} // namespace fuzz
} // namespace vg

#endif // VG_FUZZ_DIFFRUNNER_H
