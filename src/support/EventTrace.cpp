//===-- support/EventTrace.cpp - Scheduler/signal/event tracing -----------==//

#include "support/EventTrace.h"

#include "support/Output.h"

#include <cstdio>

using namespace vg;

const char *vg::traceEventName(TraceEvent E) {
  switch (E) {
  case TraceEvent::PreRegRead:
    return "pre-reg-read";
  case TraceEvent::PostRegWrite:
    return "post-reg-write";
  case TraceEvent::PreMemRead:
    return "pre-mem-read";
  case TraceEvent::PreMemReadAsciiz:
    return "pre-mem-read-asciiz";
  case TraceEvent::PreMemWrite:
    return "pre-mem-write";
  case TraceEvent::PostMemWrite:
    return "post-mem-write";
  case TraceEvent::NewMemStartup:
    return "new-mem-startup";
  case TraceEvent::NewMemMmap:
    return "new-mem-mmap";
  case TraceEvent::DieMemMunmap:
    return "die-mem-munmap";
  case TraceEvent::NewMemBrk:
    return "new-mem-brk";
  case TraceEvent::DieMemBrk:
    return "die-mem-brk";
  case TraceEvent::CopyMemMremap:
    return "copy-mem-mremap";
  case TraceEvent::NewMemStack:
    return "new-mem-stack";
  case TraceEvent::DieMemStack:
    return "die-mem-stack";
  case TraceEvent::PostFileRead:
    return "post-file-read";
  case TraceEvent::SyscallEnter:
    return "syscall-enter";
  case TraceEvent::SyscallExit:
    return "syscall-exit";
  case TraceEvent::SigQueue:
    return "sig-queue";
  case TraceEvent::SigDrop:
    return "sig-drop";
  case TraceEvent::SigDeliver:
    return "sig-deliver";
  case TraceEvent::SigReturn:
    return "sig-return";
  case TraceEvent::SigFatal:
    return "sig-fatal";
  case TraceEvent::ThreadSwitch:
    return "thread-switch";
  case TraceEvent::ThreadExit:
    return "thread-exit";
  case TraceEvent::FaultInjected:
    return "fault-injected";
  case TraceEvent::NumEvents:
    break;
  }
  return "?";
}

EventTracer::EventTracer(size_t Capacity) {
  Ring.resize(Capacity ? Capacity : 1);
}

void EventTracer::record(int Tid, TraceEvent E, uint32_t A, uint32_t B,
                         uint32_t C) {
  std::unique_lock<std::mutex> L(Mu, std::defer_lock);
  if (ThreadSafe)
    L.lock();
  Record &R = Ring[Recorded % Ring.size()];
  R.Block = AtomicClock ? AtomicClock->load(std::memory_order_relaxed)
                        : (Clock ? *Clock : 0);
  R.Tid = Tid;
  R.E = E;
  R.A = A;
  R.B = B;
  R.C = C;
  ++Recorded;
  ++Counts[static_cast<unsigned>(E)];
}

std::string EventTracer::serialize() const {
  std::string S;
  char Line[160];
  std::snprintf(Line, sizeof(Line),
                "=== event trace (records=%llu dropped=%llu) ===\n",
                static_cast<unsigned long long>(Recorded),
                static_cast<unsigned long long>(dropped()));
  S += Line;

  uint64_t Kept = Recorded < Ring.size() ? Recorded : Ring.size();
  uint64_t First = Recorded - Kept;
  for (uint64_t I = 0; I != Kept; ++I) {
    const Record &R = Ring[(First + I) % Ring.size()];
    std::snprintf(Line, sizeof(Line),
                  "@%010llu t%d %s a=0x%x b=0x%x c=0x%x\n",
                  static_cast<unsigned long long>(R.Block), R.Tid,
                  traceEventName(R.E), R.A, R.B, R.C);
    S += Line;
  }

  S += "--- event counts ---\n";
  for (unsigned I = 0; I != NumTraceEvents; ++I) {
    if (Counts[I] == 0)
      continue;
    std::snprintf(Line, sizeof(Line), "%-20s %llu\n",
                  traceEventName(static_cast<TraceEvent>(I)),
                  static_cast<unsigned long long>(Counts[I]));
    S += Line;
  }
  S += "=== end event trace ===\n";
  return S;
}

void EventTracer::dump(OutputSink &Out) const { Out.write(serialize()); }
