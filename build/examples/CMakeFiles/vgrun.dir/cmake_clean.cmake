file(REMOVE_RECURSE
  "CMakeFiles/vgrun.dir/vgrun.cpp.o"
  "CMakeFiles/vgrun.dir/vgrun.cpp.o.d"
  "vgrun"
  "vgrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
