//===-- support/FaultInject.cpp - Deterministic fault injection -----------==//

#include "support/FaultInject.h"

#include <cerrno>
#include <cstdlib>

using namespace vg;

const char *vg::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::Syscall:
    return "syscall";
  case FaultKind::ShortIO:
    return "shortio";
  case FaultKind::MemPressure:
    return "mempressure";
  case FaultKind::Wakeup:
    return "wakeup";
  case FaultKind::SigStorm:
    return "sigstorm";
  case FaultKind::Preempt:
    return "preempt";
  case FaultKind::TTFlush:
    return "ttflush";
  case FaultKind::NumKinds:
    break;
  }
  return "?";
}

namespace {

/// Default 1-in-N rates per kind. Block-boundary kinds (sigstorm, preempt,
/// ttflush) are consulted once per dispatched block and therefore get much
/// longer odds than the per-syscall kinds.
constexpr uint32_t DefaultRate[NumFaultKinds] = {
    /*syscall=*/16,  /*shortio=*/8,    /*mempressure=*/24,
    /*wakeup=*/4,    /*sigstorm=*/512, /*preempt=*/1024,
    /*ttflush=*/4096};

int kindFromName(const std::string &Name) {
  for (unsigned I = 0; I != NumFaultKinds; ++I)
    if (Name == faultKindName(static_cast<FaultKind>(I)))
      return static_cast<int>(I);
  return -1;
}

/// Hard-validated unsigned parse: the whole string must be a digit-leading
/// integer (0x... accepted) with no sign and no trailing garbage. The
/// lenient strtoull it replaces turned "seed=abc" into seed=0 — a silently
/// different fuzz campaign than the one the user asked for.
bool parseU64Checked(const char *C, uint64_t &Out) {
  if (*C < '0' || *C > '9')
    return false;
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(C, &End, 0);
  if (*End != '\0' || errno == ERANGE)
    return false;
  Out = V;
  return true;
}

} // namespace

bool FaultPlan::parse(const std::string &Spec, std::string &Err) {
  for (uint32_t &R : Rate)
    R = 0;
  Seed = 0;
  bool AnyKind = false;

  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Item = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() + 1 : Comma + 1;
    if (Item.empty())
      continue;

    if (Item.rfind("seed=", 0) == 0) {
      if (!parseU64Checked(Item.c_str() + 5, Seed)) {
        Err = "bad fault-inject seed in '" + Item + "'";
        return false;
      }
      continue;
    }

    std::string Name = Item;
    uint32_t R = 0; // 0 = use per-kind default
    if (size_t Colon = Item.find(':'); Colon != std::string::npos) {
      Name = Item.substr(0, Colon);
      uint64_t Parsed = 0;
      if (!parseU64Checked(Item.c_str() + Colon + 1, Parsed) ||
          Parsed == 0 || Parsed > 0xFFFFFFFFull) {
        Err = "bad fault-inject rate in '" + Item + "'";
        return false;
      }
      R = static_cast<uint32_t>(Parsed);
    }

    if (Name == "all") {
      for (unsigned I = 0; I != NumFaultKinds; ++I)
        Rate[I] = R ? R : DefaultRate[I];
      AnyKind = true;
      continue;
    }
    int K = kindFromName(Name);
    if (K < 0) {
      Err = "unknown fault-inject kind '" + Name + "'";
      return false;
    }
    Rate[K] = R ? R : DefaultRate[K];
    AnyKind = true;
  }

  if (!AnyKind) {
    Err = "fault-inject spec enables no fault kinds";
    return false;
  }
  // splitmix64 wants a nonzero-ish starting point; golden-ratio-stir the
  // seed so seed=0 and seed=1 diverge immediately.
  State = Seed + 0x9E3779B97F4A7C15ULL;
  return true;
}

uint64_t FaultPlan::next() {
  // splitmix64: tiny, fast, and plenty for 1-in-N decisions.
  uint64_t Z = (State += 0x9E3779B97F4A7C15ULL);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

bool FaultPlan::roll(FaultKind K) {
  unsigned I = static_cast<unsigned>(K);
  if (Rate[I] == 0)
    return false;
  ++Rolls;
  bool Hit = next() % Rate[I] == 0;
  if (Hit)
    ++Injected[I];
  return Hit;
}

uint32_t FaultPlan::pick(uint32_t Bound) {
  return static_cast<uint32_t>(next() % Bound);
}

uint64_t FaultPlan::injectedTotal() const {
  uint64_t N = 0;
  for (uint64_t V : Injected)
    N += V;
  return N;
}
