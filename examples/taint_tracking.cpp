//===-- examples/taint_tracking.cpp - TaintGrind catching an "exploit" ----==//
///
/// \file
/// The TaintCheck scenario (paper Section 1.2): a program reads untrusted
/// input (stdin), uses an attacker-controlled byte to index a function
/// table, and jumps through the result. TaintGrind tracks the taint from
/// the read() through the arithmetic to the indirect call and flags the
/// control-flow transfer.
///
//===----------------------------------------------------------------------===//

#include "core/Launcher.h"
#include "guestlib/GuestLib.h"
#include "kernel/SimKernel.h"
#include "tools/TaintGrind.h"

#include <cstdio>

using namespace vg;
using namespace vg::vg1;

int main() {
  Assembler Code(0x1000);
  Assembler Data(0x100000);
  [[maybe_unused]] GuestLibLabels Lib = emitGuestLib(Code, Data);
  Label Main = Code.newLabel();
  uint32_t Entry = emitStart(Code, Main);

  // The two handlers are laid out back to back with a fixed spacing, so
  // an attacker-controlled byte can select one arithmetically — the
  // tainted-pointer-arithmetic pattern TaintCheck flags.
  Label Handler0 = Code.newLabel(), Handler1 = Code.newLabel();
  Label Skip = Code.newLabel();
  Code.bind(Main);
  Code.jmp(Skip);
  Code.bind(Handler0); // 8 bytes of handler 0: movi r0,10 (6) + ret + nop
  Code.movi(Reg::R0, 10);
  Code.ret();
  Code.nop();
  Code.bind(Handler1);
  Code.movi(Reg::R0, 11);
  Code.ret();
  Code.bind(Skip);

  Label Buf = Data.boundLabel();
  Data.emitZeros(16);

  // read(0, buf, 1): one attacker-controlled byte.
  Code.movi(Reg::R0, SysRead);
  Code.movi(Reg::R1, 0);
  Code.movi(Reg::R2, Data.labelAddr(Buf));
  Code.movi(Reg::R3, 1);
  Code.sys();
  // target = &handler0 + (buf[0] & 1) * 8 — attacker-derived address.
  Code.movi(Reg::R2, Data.labelAddr(Buf));
  Code.ldb(Reg::R3, Reg::R2, 0);
  Code.andi(Reg::R3, Reg::R3, 1);
  Code.shli(Reg::R3, Reg::R3, 3);
  Code.leai(Reg::R5, Handler0);
  Code.add(Reg::R5, Reg::R5, Reg::R3);
  Code.callr(Reg::R5); // <- tainted control transfer
  Code.ret();

  GuestImage Img =
      GuestImageBuilder().addCode(Code).addData(Data).entry(Entry).build();

  TaintGrind Tool;
  RunReport R = runUnderCore(Img, &Tool, {}, /*StdinData=*/"\x01");
  std::printf("exit code: %d (handler chosen by the input byte)\n\n"
              "=== taintgrind report ===\n%s",
              R.ExitCode, R.ToolOutput.c_str());
  std::printf("\n(TaintCheck detected exploits exactly this way: a jump "
              "target derived from network input.)\n");
  return 0;
}
