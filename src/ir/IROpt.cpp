//===-- ir/IROpt.cpp - IR optimisation passes -----------------------------==//

#include "ir/IROpt.h"

#include <algorithm>
#include <map>
#include <string>

using namespace vg;
using namespace vg::ir;

//===----------------------------------------------------------------------===//
// Fuzz self-test plant
//===----------------------------------------------------------------------===//

static int FuzzPlantKind = 0;

void vg::ir::setFuzzPlant(int Kind) { FuzzPlantKind = Kind; }
int vg::ir::fuzzPlant() { return FuzzPlantKind; }

//===----------------------------------------------------------------------===//
// Flattening: tree IR -> flat IR
//===----------------------------------------------------------------------===//

namespace {

class Flattener {
public:
  Flattener(const IRSB &In, IRSB &Out) : In(In), Out(Out) {}

  void run() {
    for (const Stmt *S : In.stmts())
      flattenStmt(S);
    Out.setNext(atomize(In.next()), In.endJumpKind());
  }

private:
  TmpId mapTmp(TmpId Old) {
    if (Old >= TmpMap.size())
      TmpMap.resize(Old + 1, NoTmp);
    if (TmpMap[Old] == NoTmp)
      TmpMap[Old] = Out.newTmp(In.typeOfTmp(Old));
    return TmpMap[Old];
  }

  /// Returns an atom (tmp/const) in Out that evaluates \p E, emitting WrTmp
  /// statements for interior nodes.
  Expr *atomize(const Expr *E) {
    if (E->Kind == ExprKind::Const)
      return Out.mkConst(E->T, E->ConstVal);
    if (E->Kind == ExprKind::RdTmp)
      return Out.rdTmp(mapTmp(E->Tmp));
    Expr *Shallow = shallowClone(E);
    return Out.rdTmp(Out.wrTmp(Shallow));
  }

  /// Clones one level of \p E with atomised operands.
  Expr *shallowClone(const Expr *E) {
    switch (E->Kind) {
    case ExprKind::Const:
      return Out.mkConst(E->T, E->ConstVal);
    case ExprKind::RdTmp:
      return Out.rdTmp(mapTmp(E->Tmp));
    case ExprKind::Get:
      return Out.get(E->Offset, E->T);
    case ExprKind::Unop:
      return Out.unop(E->Opc, atomize(E->Arg[0]));
    case ExprKind::Binop:
      return Out.binop(E->Opc, atomize(E->Arg[0]), atomize(E->Arg[1]));
    case ExprKind::Load:
      return Out.load(E->T, atomize(E->Arg[0]));
    case ExprKind::ITE:
      return Out.ite(atomize(E->Arg[0]), atomize(E->Arg[1]),
                     atomize(E->Arg[2]));
    case ExprKind::CCall: {
      std::vector<Expr *> Args;
      for (const Expr *A : E->CallArgs)
        Args.push_back(atomize(A));
      return Out.ccall(E->CalleeFn, E->T, std::move(Args));
    }
    }
    unreachable("shallowClone: bad expr kind");
  }

  void flattenStmt(const Stmt *S) {
    switch (S->Kind) {
    case StmtKind::NoOp:
      return; // dropped
    case StmtKind::IMark:
      Out.imark(S->IAddr, S->ILen);
      return;
    case StmtKind::Put:
      Out.put(S->Offset, atomize(S->Data));
      return;
    case StmtKind::WrTmp:
      Out.wrTmpTo(mapTmp(S->Tmp), shallowClone(S->Data));
      return;
    case StmtKind::Store: {
      Expr *A = atomize(S->Addr);
      Expr *D = atomize(S->Data);
      Out.store(A, D);
      return;
    }
    case StmtKind::Dirty: {
      std::vector<Expr *> Args;
      for (const Expr *A : S->CallArgs)
        Args.push_back(atomize(A));
      Expr *G = S->Guard ? atomize(S->Guard) : nullptr;
      Out.dirty(S->CalleeFn, std::move(Args),
                S->Tmp == NoTmp ? NoTmp : mapTmp(S->Tmp), G, S->Fx);
      return;
    }
    case StmtKind::Exit:
      Out.exit(atomize(S->Guard), S->DstPC, S->JK);
      return;
    case StmtKind::ShadowProbe: {
      Expr *A = atomize(S->Addr);
      Expr *D = S->Data ? atomize(S->Data) : nullptr;
      Out.shadowProbe(A, D, mapTmp(S->Tmp), S->AccSize);
      return;
    }
    }
  }

  const IRSB &In;
  IRSB &Out;
  std::vector<TmpId> TmpMap;
};

} // namespace

std::unique_ptr<IRSB> ir::flatten(const IRSB &In) {
  auto Out = std::make_unique<IRSB>();
  Flattener F(In, *Out);
  F.run();
  return Out;
}

//===----------------------------------------------------------------------===//
// Shared pass machinery
//===----------------------------------------------------------------------===//

namespace {

/// Byte ranges of guest state, for Get/Put conflict analysis.
struct Range {
  uint32_t Lo, Hi; // [Lo, Hi)
  bool overlaps(Range O) const { return Lo < O.Hi && O.Lo < Hi; }
  bool covers(Range O) const { return Lo <= O.Lo && O.Hi <= Hi; }
};

Range rangeOfPut(const Stmt *S) {
  return {S->Offset, S->Offset + tySizeBits(S->Data->T) / 8};
}

Range rangeOfGet(const Expr *E) {
  return {E->Offset, E->Offset + tySizeBits(E->T) / 8};
}

/// Forward constant/copy propagation + folding + algebraic simplification +
/// helper-call specialisation. Rewrites in place; removes WrTmps that became
/// pure atom copies.
class PropFold {
public:
  PropFold(IRSB &SB, const SpecFn &Spec) : SB(SB), Spec(Spec) {}

  void run() {
    std::vector<Stmt *> NewStmts;
    NewStmts.reserve(SB.stmts().size());
    Out = &NewStmts;
    for (Stmt *S : SB.stmts()) {
      if (!rewriteStmt(S))
        continue; // absorbed into environment
      NewStmts.push_back(S);
    }
    SB.setStmts(std::move(NewStmts));
    SB.setNext(subst(SB.next()), SB.endJumpKind());
  }

private:
  /// Re-flattens an expression the spec hook may have returned as a small
  /// tree: interior nodes get their own WrTmp emitted before the current
  /// statement, so the block stays flat.
  Expr *atomizeOperand(Expr *E) {
    if (E->isAtom())
      return E;
    Expr *N = simplify(normalizeRhs(E));
    if (N->isAtom())
      return N;
    TmpId T = SB.newTmp(N->T);
    Stmt *S = SB.allocStmt();
    S->Kind = StmtKind::WrTmp;
    S->Tmp = T;
    S->Data = N;
    Out->push_back(S);
    return SB.rdTmp(T);
  }

  /// Makes all operands of \p E atoms (recursively flattening sub-trees).
  Expr *normalizeRhs(Expr *E) {
    switch (E->Kind) {
    case ExprKind::Unop:
      E->Arg[0] = atomizeOperand(E->Arg[0]);
      return E;
    case ExprKind::Binop:
      E->Arg[0] = atomizeOperand(E->Arg[0]);
      E->Arg[1] = atomizeOperand(E->Arg[1]);
      return E;
    case ExprKind::Load:
      E->Arg[0] = atomizeOperand(E->Arg[0]);
      return E;
    case ExprKind::ITE:
      for (int I = 0; I != 3; ++I)
        E->Arg[I] = atomizeOperand(E->Arg[I]);
      return E;
    case ExprKind::CCall:
      for (Expr *&A : E->CallArgs)
        A = atomizeOperand(A);
      return E;
    default:
      return E;
    }
  }

  /// Resolves an atom through the tmp environment.
  Expr *subst(Expr *E) {
    while (E->Kind == ExprKind::RdTmp) {
      auto It = Env.find(E->Tmp);
      if (It == Env.end())
        break;
      E = It->second;
    }
    return E;
  }

  /// Simplifies a one-level expression whose operands are already resolved.
  /// Returns the (possibly new) expression.
  Expr *simplify(Expr *E) {
    switch (E->Kind) {
    case ExprKind::Unop: {
      Expr *A = E->Arg[0];
      if (A->isConst())
        return SB.mkConst(E->T, evalOp(E->Opc, A->ConstVal, 0));
      return E;
    }
    case ExprKind::Binop: {
      Expr *A = E->Arg[0], *B = E->Arg[1];
      if (A->isConst() && B->isConst())
        return SB.mkConst(E->T, evalOp(E->Opc, A->ConstVal, B->ConstVal));
      // Algebraic identities (a representative, conservative set).
      switch (E->Opc) {
      case Op::Add8:
      case Op::Add16:
      case Op::Add32:
      case Op::Add64:
      case Op::Or8:
      case Op::Or16:
      case Op::Or32:
      case Op::Or64:
      case Op::Xor8:
      case Op::Xor16:
      case Op::Xor32:
      case Op::Xor64:
        if (B->isConst(0))
          return A;
        if (A->isConst(0))
          return B;
        // Deliberately-planted miscompile for vgfuzz --self-test (off in
        // normal operation; see setFuzzPlant in IROpt.h).
        if (fuzzPlant() == 1 && E->Opc == Op::Add32 && B->isConst(1))
          return A;
        break;
      case Op::Sub8:
      case Op::Sub16:
      case Op::Sub32:
      case Op::Sub64:
        if (B->isConst(0))
          return A;
        break;
      case Op::And8:
      case Op::And16:
      case Op::And32:
      case Op::And64:
        if (B->isConst(0) || A->isConst(0))
          return SB.mkConst(E->T, 0);
        if (B->isConst(truncToTy(~0ull, E->T)))
          return A;
        if (A->isConst(truncToTy(~0ull, E->T)))
          return B;
        if (A->isRdTmp() && B->isRdTmp() && A->Tmp == B->Tmp)
          return A;
        break;
      case Op::Shl8:
      case Op::Shl16:
      case Op::Shl32:
      case Op::Shl64:
      case Op::Shr8:
      case Op::Shr16:
      case Op::Shr32:
      case Op::Shr64:
      case Op::Sar8:
      case Op::Sar16:
      case Op::Sar32:
      case Op::Sar64:
        if (B->isConst(0))
          return A;
        break;
      case Op::Mul8:
      case Op::Mul16:
      case Op::Mul32:
      case Op::Mul64:
        if (B->isConst(1))
          return A;
        if (A->isConst(1))
          return B;
        if (B->isConst(0) || A->isConst(0))
          return SB.mkConst(E->T, 0);
        break;
      default:
        break;
      }
      // Or/Xor/Sub with identical tmps.
      if (A->isRdTmp() && B->isRdTmp() && A->Tmp == B->Tmp) {
        switch (E->Opc) {
        case Op::Or8:
        case Op::Or16:
        case Op::Or32:
        case Op::Or64:
          return A;
        case Op::Xor8:
        case Op::Xor16:
        case Op::Xor32:
        case Op::Xor64:
        case Op::Sub8:
        case Op::Sub16:
        case Op::Sub32:
        case Op::Sub64:
          return SB.mkConst(E->T, 0);
        case Op::CmpEQ8:
        case Op::CmpEQ16:
        case Op::CmpEQ32:
        case Op::CmpEQ64:
          return SB.constI1(true);
        case Op::CmpNE8:
        case Op::CmpNE16:
        case Op::CmpNE32:
        case Op::CmpNE64:
          return SB.constI1(false);
        default:
          break;
        }
      }
      return E;
    }
    case ExprKind::ITE:
      if (E->Arg[0]->isConst())
        return E->Arg[0]->ConstVal ? E->Arg[1] : E->Arg[2];
      if (E->Arg[1]->isRdTmp() && E->Arg[2]->isRdTmp() &&
          E->Arg[1]->Tmp == E->Arg[2]->Tmp)
        return E->Arg[1];
      return E;
    case ExprKind::CCall:
      if (Spec) {
        if (Expr *R = Spec(SB, E->CalleeFn, E->CallArgs))
          return R;
      }
      return E;
    default:
      return E;
    }
  }

  /// Rewrites operands of \p S through the environment; returns false if the
  /// statement should be dropped (its value captured in the environment).
  bool rewriteStmt(Stmt *S) {
    switch (S->Kind) {
    case StmtKind::NoOp:
      return false;
    case StmtKind::IMark:
      return true;
    case StmtKind::Put:
      S->Data = subst(S->Data);
      return true;
    case StmtKind::WrTmp: {
      Expr *D = S->Data;
      // Resolve operands.
      switch (D->Kind) {
      case ExprKind::Const:
      case ExprKind::RdTmp:
        D = subst(D);
        break;
      case ExprKind::Get:
        break;
      case ExprKind::Unop:
        D->Arg[0] = subst(D->Arg[0]);
        break;
      case ExprKind::Binop:
        D->Arg[0] = subst(D->Arg[0]);
        D->Arg[1] = subst(D->Arg[1]);
        break;
      case ExprKind::Load:
        D->Arg[0] = subst(D->Arg[0]);
        break;
      case ExprKind::ITE:
        for (int I = 0; I != 3; ++I)
          D->Arg[I] = subst(D->Arg[I]);
        break;
      case ExprKind::CCall:
        for (Expr *&A : D->CallArgs)
          A = subst(A);
        break;
      }
      D = simplify(D);
      if (D->isAtom()) {
        Env[S->Tmp] = D;
        return false;
      }
      D = normalizeRhs(D); // spec results may be small trees
      S->Data = D;
      return true;
    }
    case StmtKind::Store:
      S->Addr = subst(S->Addr);
      S->Data = subst(S->Data);
      return true;
    case StmtKind::Dirty:
      for (Expr *&A : S->CallArgs)
        A = subst(A);
      if (S->Guard) {
        S->Guard = subst(S->Guard);
        // A statically false guard removes the call entirely.
        if (S->Guard->isConst(0))
          return false;
      }
      return true;
    case StmtKind::Exit:
      S->Guard = subst(S->Guard);
      if (S->Guard->isConst(0))
        return false; // never taken
      return true;
    case StmtKind::ShadowProbe:
      S->Addr = subst(S->Addr);
      if (S->Data)
        S->Data = subst(S->Data);
      return true;
    }
    return true;
  }

  IRSB &SB;
  const SpecFn &Spec;
  std::map<TmpId, Expr *> Env;
  std::vector<Stmt *> *Out = nullptr;
};

/// Redundant Get elimination: forward pass tracking the current contents of
/// guest-state slots, from PUTs seen and previous GETs.
class RedundantGet {
public:
  RedundantGet(IRSB &SB, const TraceOptConfig *Trace = nullptr)
      : SB(SB), Trace(Trace) {}

  void run() {
    for (Stmt *S : SB.stmts()) {
      switch (S->Kind) {
      case StmtKind::WrTmp:
        if (S->Data->Kind == ExprKind::Get) {
          Range R = rangeOfGet(S->Data);
          if (Expr *Known = findExact(R, S->Data->T)) {
            // Replace the Get with the known atom; PropFold then propagates.
            S->Data = Known;
          } else {
            record(R, SB.rdTmp(S->Tmp));
          }
        }
        break;
      case StmtKind::Put: {
        Range R = rangeOfPut(S);
        invalidate(R);
        if (S->Data->isAtom())
          record(R, S->Data);
        break;
      }
      case StmtKind::Dirty:
        // An unannotated helper may touch any guest-state slot. Trace tier
        // only: a helper declared StateFxComplete is exactly its Fx list,
        // so probe/check calls between former block seams stop killing
        // Get/Put forwarding (gated on Trace to keep tiers 0/1 untouched).
        if (S->Fx.empty() &&
            !(Trace && S->CalleeFn && S->CalleeFn->StateFxComplete)) {
          Slots.clear();
        } else {
          for (const GuestFx &F : S->Fx)
            if (F.IsWrite)
              invalidate(Range{F.Offset, F.Offset + F.Size});
        }
        break;
      default:
        break;
      }
    }
  }

private:
  struct Slot {
    Range R;
    Expr *Val;
  };

  Expr *findExact(Range R, Ty T) {
    for (const Slot &S : Slots)
      if (S.R.Lo == R.Lo && S.R.Hi == R.Hi && S.Val->T == T)
        return S.Val;
    return nullptr;
  }

  void invalidate(Range R) {
    for (size_t I = 0; I != Slots.size();) {
      if (Slots[I].R.overlaps(R)) {
        Slots[I] = Slots.back();
        Slots.pop_back();
      } else {
        ++I;
      }
    }
  }

  void record(Range R, Expr *Val) {
    invalidate(R);
    Slots.push_back(Slot{R, Val});
  }

  IRSB &SB;
  const TraceOptConfig *Trace;
  std::vector<Slot> Slots;
};

/// Redundant Put elimination (backward): a PUT whose slot is overwritten by
/// a later PUT before any observation (Get, Dirty, Exit, or block end) is
/// dead. This is what removes the intermediate %pc writes in Figure 1's
/// optimisation (paper Section 3.7, Phase 2).
class DeadPut {
public:
  DeadPut(IRSB &SB, const PreservedPuts &Preserve,
          const TraceOptConfig *Trace = nullptr)
      : SB(SB), Preserve(Preserve), Trace(Trace) {}

  void run() {
    auto &Stmts = SB.stmts();
    std::vector<Stmt *> Kept;
    Kept.reserve(Stmts.size());
    // Walk backwards. Pending = slots that will be overwritten.
    if (Trace)
      Pending = takenPendingRanges(nullptr); // liveness at the block end
    for (size_t I = Stmts.size(); I-- > 0;) {
      Stmt *S = Stmts[I];
      bool Keep = true;
      switch (S->Kind) {
      case StmtKind::Put: {
        Range R = rangeOfPut(S);
        if (!Preserve.covers(S->Offset) && isFullyPending(R)) {
          Keep = false;
          if (Trace && Trace->Stats && overlapsCC(R))
            ++Trace->Stats->DeadFlagPuts;
        } else {
          addPending(R);
        }
        break;
      }
      case StmtKind::WrTmp:
        if (S->Data->Kind == ExprKind::Get)
          removePending(rangeOfGet(S->Data));
        break;
      case StmtKind::Dirty:
        // See RedundantGet: a StateFxComplete helper is its Fx list.
        if (S->Fx.empty() &&
            !(Trace && S->CalleeFn && S->CalleeFn->StateFxComplete)) {
          Pending.clear();
        } else {
          for (const GuestFx &F : S->Fx)
            removePending(Range{F.Offset, F.Offset + F.Size});
        }
        break;
      case StmtKind::Exit:
        if (Trace) {
          // A side exit is a jump with known downstream liveness, not a
          // barrier: a Put is dead only if overwritten on the taken path
          // (exit-target liveness) AND on the fall-through path (current
          // Pending), so intersect the two sets.
          std::vector<Range> Taken = takenPendingRanges(S);
          std::vector<Range> Isect;
          for (Range T : Taken)
            for (Range P : Pending) {
              Range R{std::max(T.Lo, P.Lo), std::min(T.Hi, P.Hi)};
              if (R.Lo < R.Hi)
                Isect.push_back(R);
            }
          Pending = std::move(Isect);
        } else {
          Pending.clear();
        }
        break;
      default:
        break;
      }
      if (Keep)
        Kept.push_back(S);
    }
    std::reverse(Kept.begin(), Kept.end());
    SB.setStmts(std::move(Kept));
  }

private:
  bool isFullyPending(Range R) {
    for (Range P : Pending)
      if (P.covers(R))
        return true;
    return false;
  }

  /// Guest-state ranges guaranteed to be overwritten, before any read,
  /// once this exit is taken (\p S null = the fall-off-the-end next).
  /// The PC slot is unconditional: every executor exit path rewrites it.
  /// The CC thunk (and its shadow mirror) joins when the proven-Boring
  /// target overwrites the whole thunk before reading it.
  std::vector<Range> takenPendingRanges(const Stmt *S) const {
    std::vector<Range> T;
    if (Trace->PCHi > Trace->PCLo)
      T.push_back(Range{Trace->PCLo, Trace->PCHi});
    bool CCDead = S ? (S->JK == JumpKind::Boring &&
                       Trace->flagsDeadAtTarget(S->DstPC))
                    : Trace->FlagsDeadAtEnd;
    if (CCDead && Trace->CCHi > Trace->CCLo) {
      T.push_back(Range{Trace->CCLo, Trace->CCHi});
      if (Trace->ShadowOffset)
        T.push_back(Range{Trace->CCLo + Trace->ShadowOffset,
                          Trace->CCHi + Trace->ShadowOffset});
    }
    return T;
  }

  bool overlapsCC(Range R) const {
    if (Trace->CCHi == Trace->CCLo)
      return false;
    Range CC{Trace->CCLo, Trace->CCHi};
    Range SCC{Trace->CCLo + Trace->ShadowOffset,
              Trace->CCHi + Trace->ShadowOffset};
    return CC.overlaps(R) || (Trace->ShadowOffset && SCC.overlaps(R));
  }

  void addPending(Range R) { Pending.push_back(R); }

  void removePending(Range R) {
    for (size_t I = 0; I != Pending.size();) {
      if (Pending[I].overlaps(R)) {
        Pending[I] = Pending.back();
        Pending.pop_back();
      } else {
        ++I;
      }
    }
  }

  IRSB &SB;
  const PreservedPuts &Preserve;
  const TraceOptConfig *Trace;
  std::vector<Range> Pending;
};

/// Local common-subexpression elimination over pure flat-IR right-hand
/// sides (Unop/Binop/ITE/CCall). Loads are not CSEd (stores would have to
/// invalidate them); Gets are handled by RedundantGet instead.
class CSE {
public:
  explicit CSE(IRSB &SB) : SB(SB) {}

  void run() {
    for (Stmt *S : SB.stmts()) {
      if (S->Kind != StmtKind::WrTmp)
        continue;
      Expr *D = S->Data;
      if (D->Kind != ExprKind::Unop && D->Kind != ExprKind::Binop &&
          D->Kind != ExprKind::ITE && D->Kind != ExprKind::CCall)
        continue;
      std::string Key = keyOf(D);
      auto [It, Inserted] = Table.try_emplace(Key, S->Tmp);
      if (!Inserted)
        S->Data = SB.rdTmp(It->second); // PropFold folds the copy away
    }
  }

private:
  static void atomKey(const Expr *E, std::string &K) {
    if (E->isConst()) {
      K += 'c';
      K += std::to_string(E->ConstVal);
    } else {
      K += 't';
      K += std::to_string(E->Tmp);
    }
    K += '.';
  }

  static std::string keyOf(const Expr *D) {
    std::string K;
    switch (D->Kind) {
    case ExprKind::Unop:
    case ExprKind::Binop:
      K += 'o';
      K += std::to_string(static_cast<unsigned>(D->Opc));
      K += '.';
      for (unsigned I = 0; I != opArity(D->Opc); ++I)
        atomKey(D->Arg[I], K);
      break;
    case ExprKind::ITE:
      K += 'i';
      for (int I = 0; I != 3; ++I)
        atomKey(D->Arg[I], K);
      break;
    case ExprKind::CCall:
      K += 'h';
      K += std::to_string(reinterpret_cast<uintptr_t>(D->CalleeFn));
      K += '.';
      for (const Expr *A : D->CallArgs)
        atomKey(A, K);
      break;
    default:
      break;
    }
    return K;
  }

  IRSB &SB;
  std::map<std::string, TmpId> Table;
};

/// Dead code elimination: removes WrTmps whose temporaries are never used
/// (backwards liveness in one pass, since flat IR defs precede uses).
class DeadCode {
public:
  explicit DeadCode(IRSB &SB) : SB(SB) {}

  void run() {
    Live.assign(SB.numTmps(), false);
    markExpr(SB.next());
    auto &Stmts = SB.stmts();
    std::vector<Stmt *> Kept;
    Kept.reserve(Stmts.size());
    for (size_t I = Stmts.size(); I-- > 0;) {
      Stmt *S = Stmts[I];
      if (S->Kind == StmtKind::NoOp)
        continue;
      if (S->Kind == StmtKind::WrTmp && !Live[S->Tmp])
        continue; // dead def of a pure value
      markStmt(S);
      Kept.push_back(S);
    }
    std::reverse(Kept.begin(), Kept.end());
    SB.setStmts(std::move(Kept));
  }

private:
  void markExpr(const Expr *E) {
    if (!E)
      return;
    switch (E->Kind) {
    case ExprKind::RdTmp:
      Live[E->Tmp] = true;
      break;
    case ExprKind::Unop:
      markExpr(E->Arg[0]);
      break;
    case ExprKind::Binop:
      markExpr(E->Arg[0]);
      markExpr(E->Arg[1]);
      break;
    case ExprKind::Load:
      markExpr(E->Arg[0]);
      break;
    case ExprKind::ITE:
      markExpr(E->Arg[0]);
      markExpr(E->Arg[1]);
      markExpr(E->Arg[2]);
      break;
    case ExprKind::CCall:
      for (const Expr *A : E->CallArgs)
        markExpr(A);
      break;
    default:
      break;
    }
  }

  void markStmt(const Stmt *S) {
    switch (S->Kind) {
    case StmtKind::Put:
    case StmtKind::WrTmp:
      markExpr(S->Data);
      break;
    case StmtKind::Store:
      markExpr(S->Addr);
      markExpr(S->Data);
      break;
    case StmtKind::Dirty:
      for (const Expr *A : S->CallArgs)
        markExpr(A);
      markExpr(S->Guard);
      break;
    case StmtKind::Exit:
      markExpr(S->Guard);
      break;
    case StmtKind::ShadowProbe:
      markExpr(S->Addr);
      markExpr(S->Data);
      break;
    default:
      break;
    }
  }

  IRSB &SB;
  std::vector<bool> Live;
};

/// Trace tier only: CSE of ShadowProbe *load* probes across former block
/// seams. When a trace re-checks an address its earlier constituent
/// already probed, the probe result (V-word or punt marker) is unchanged
/// provided nothing in between can write tool shadow state, so the second
/// probe collapses to a tmp copy (guard hoisting: the check runs once at
/// the first access). Store-form probes and Dirty calls without
/// Callee::PreservesShadow clobber the table; guest Put/Store/Load/Exit
/// never touch the shadow map (on a taken side exit the rewritten copy is
/// simply not reached). A punting address stays a punt both times, so the
/// slow-path helper still runs per access and error counts are unchanged.
class ShadowProbeCSE {
public:
  ShadowProbeCSE(IRSB &SB, TraceOptStats *Stats) : SB(SB), Stats(Stats) {}

  void run() {
    for (Stmt *S : SB.stmts()) {
      switch (S->Kind) {
      case StmtKind::ShadowProbe: {
        if (S->Data) { // store form: writes V-bits
          Table.clear();
          break;
        }
        std::string Key = keyOfAddr(S->Addr, S->AccSize);
        auto [It, Inserted] = Table.try_emplace(Key, S->Tmp);
        if (!Inserted) {
          S->Kind = StmtKind::WrTmp;
          S->Data = SB.rdTmp(It->second);
          S->Addr = nullptr;
          if (Stats)
            ++Stats->ProbesCSEd;
        }
        break;
      }
      case StmtKind::Dirty:
        if (!S->CalleeFn || !S->CalleeFn->PreservesShadow)
          Table.clear();
        break;
      default:
        break;
      }
    }
  }

private:
  static std::string keyOfAddr(const Expr *Addr, uint8_t Size) {
    std::string K;
    if (Addr->isConst()) {
      K += 'c';
      K += std::to_string(Addr->ConstVal);
    } else {
      K += 't';
      K += std::to_string(Addr->Tmp);
    }
    K += '.';
    K += std::to_string(Size);
    return K;
  }

  IRSB &SB;
  TraceOptStats *Stats;
  std::map<std::string, TmpId> Table;
};

void optRound(IRSB &SB, const SpecFn &Spec, const PreservedPuts &Preserve,
              const TraceOptConfig *Trace) {
  PropFold(SB, Spec).run();
  RedundantGet(SB, Trace).run();
  PropFold(SB, Spec).run();
  CSE(SB).run();
  PropFold(SB, Spec).run();
  DeadPut(SB, Preserve, Trace).run();
  DeadCode(SB).run();
}

} // namespace

void ir::optimise1(IRSB &SB, const SpecFn &Spec,
                   const PreservedPuts &Preserve,
                   const TraceOptConfig *Trace) {
  // Two rounds reach a fixpoint on all blocks the front end produces.
  for (int Round = 0; Round != 2; ++Round)
    optRound(SB, Spec, Preserve, Trace);
}

void ir::optimise2(IRSB &SB, const SpecFn &Spec,
                   const PreservedPuts &Preserve,
                   const TraceOptConfig *Trace) {
  // Analysis code benefits from Get/Put forwarding just like client code
  // (Section 4 R1: "shadow operations benefit fully from Valgrind's
  // post-instrumentation IR optimiser") — e.g. per-instruction inline
  // counters collapse to one load, N adds, and one store per block.
  optRound(SB, Spec, Preserve, Trace);
  if (Trace) {
    // Cross-seam probe dedup exposes fresh copies and common guard
    // expressions; one more round folds and sweeps them.
    ShadowProbeCSE(SB, Trace->Stats).run();
    optRound(SB, Spec, Preserve, Trace);
  }
}

//===----------------------------------------------------------------------===//
// Tree building: flat IR -> tree IR (Phase 5)
//===----------------------------------------------------------------------===//

namespace {

/// Rebuilds expression trees by substituting single-use temporaries into
/// their use points. Loads are never moved past stores; Gets never past
/// conflicting Puts; nothing is carried across a Dirty call; load-bearing
/// trees are not carried across guarded exits (fault-timing preservation).
class TreeBuilder {
public:
  explicit TreeBuilder(IRSB &SB) : SB(SB) {}

  void run() {
    countUses();
    std::vector<Stmt *> NewStmts;
    NewStmts.reserve(SB.stmts().size());
    Emit = &NewStmts;

    for (Stmt *S : SB.stmts()) {
      switch (S->Kind) {
      case StmtKind::NoOp:
        continue;
      case StmtKind::IMark:
        NewStmts.push_back(S);
        continue;
      case StmtKind::WrTmp: {
        S->Data = substitute(S->Data);
        if (UseCount[S->Tmp] == 1) {
          hold(S);
          continue;
        }
        NewStmts.push_back(S);
        continue;
      }
      case StmtKind::Put:
        S->Data = substitute(S->Data);
        flushConflicting(/*OnStore=*/false, /*OnPut=*/true,
                         rangeOfPut(S), /*All=*/false, /*OnExit=*/false);
        NewStmts.push_back(S);
        continue;
      case StmtKind::Store:
        S->Addr = substitute(S->Addr);
        S->Data = substitute(S->Data);
        flushConflicting(/*OnStore=*/true, false, {}, false, false);
        NewStmts.push_back(S);
        continue;
      case StmtKind::Dirty:
        for (Expr *&A : S->CallArgs)
          A = substitute(A);
        if (S->Guard)
          S->Guard = substitute(S->Guard);
        flushConflicting(false, false, {}, /*All=*/true, false);
        NewStmts.push_back(S);
        continue;
      case StmtKind::Exit:
        S->Guard = substitute(S->Guard);
        flushConflicting(false, false, {}, false, /*OnExit=*/true);
        NewStmts.push_back(S);
        continue;
      case StmtKind::ShadowProbe:
        // Touches only shadow state, so held guest loads/gets may cross it.
        S->Addr = substitute(S->Addr);
        if (S->Data)
          S->Data = substitute(S->Data);
        NewStmts.push_back(S);
        continue;
      }
    }

    SB.setNext(substitute(SB.next()), SB.endJumpKind());
    // Emit any still-held defs whose value is (somehow) still needed.
    for (Pending &P : Held)
      if (!P.Consumed && UseCount[P.Def->Tmp] > 0)
        NewStmts.push_back(P.Def);
    SB.setStmts(std::move(NewStmts));
  }

private:
  struct Pending {
    Stmt *Def;
    bool HasLoad = false;
    bool HasGet = false;
    std::vector<Range> GetRanges;
    bool Consumed = false;
  };

  void countExpr(const Expr *E) {
    if (!E)
      return;
    switch (E->Kind) {
    case ExprKind::RdTmp:
      if (E->Tmp >= UseCount.size())
        UseCount.resize(E->Tmp + 1, 0);
      ++UseCount[E->Tmp];
      break;
    case ExprKind::Unop:
      countExpr(E->Arg[0]);
      break;
    case ExprKind::Binop:
      countExpr(E->Arg[0]);
      countExpr(E->Arg[1]);
      break;
    case ExprKind::Load:
      countExpr(E->Arg[0]);
      break;
    case ExprKind::ITE:
      countExpr(E->Arg[0]);
      countExpr(E->Arg[1]);
      countExpr(E->Arg[2]);
      break;
    case ExprKind::CCall:
      for (const Expr *A : E->CallArgs)
        countExpr(A);
      break;
    default:
      break;
    }
  }

  void countUses() {
    UseCount.assign(SB.numTmps(), 0);
    for (const Stmt *S : SB.stmts()) {
      switch (S->Kind) {
      case StmtKind::Put:
      case StmtKind::WrTmp:
        countExpr(S->Data);
        break;
      case StmtKind::Store:
        countExpr(S->Addr);
        countExpr(S->Data);
        break;
      case StmtKind::Dirty:
        for (const Expr *A : S->CallArgs)
          countExpr(A);
        countExpr(S->Guard);
        break;
      case StmtKind::Exit:
        countExpr(S->Guard);
        break;
      case StmtKind::ShadowProbe:
        countExpr(S->Addr);
        countExpr(S->Data);
        break;
      default:
        break;
      }
    }
    countExpr(SB.next());
  }

  static void scanExpr(const Expr *E, Pending &P) {
    if (!E)
      return;
    switch (E->Kind) {
    case ExprKind::Load:
      P.HasLoad = true;
      scanExpr(E->Arg[0], P);
      break;
    case ExprKind::Get:
      P.HasGet = true;
      P.GetRanges.push_back(rangeOfGet(E));
      break;
    case ExprKind::Unop:
      scanExpr(E->Arg[0], P);
      break;
    case ExprKind::Binop:
      scanExpr(E->Arg[0], P);
      scanExpr(E->Arg[1], P);
      break;
    case ExprKind::ITE:
      scanExpr(E->Arg[0], P);
      scanExpr(E->Arg[1], P);
      scanExpr(E->Arg[2], P);
      break;
    case ExprKind::CCall:
      for (const Expr *A : E->CallArgs)
        scanExpr(A, P);
      break;
    default:
      break;
    }
  }

  void hold(Stmt *Def) {
    Pending P;
    P.Def = Def;
    scanExpr(Def->Data, P);
    Held.push_back(std::move(P));
  }

  /// Splices held single-use defs into \p E where their tmp is read.
  Expr *substitute(Expr *E) {
    if (!E)
      return E;
    if (E->Kind == ExprKind::RdTmp) {
      for (Pending &P : Held) {
        if (!P.Consumed && P.Def->Tmp == E->Tmp) {
          P.Consumed = true;
          return P.Def->Data; // already tree-substituted when held
        }
      }
      return E;
    }
    switch (E->Kind) {
    case ExprKind::Unop:
      E->Arg[0] = substitute(E->Arg[0]);
      break;
    case ExprKind::Binop:
      E->Arg[0] = substitute(E->Arg[0]);
      E->Arg[1] = substitute(E->Arg[1]);
      break;
    case ExprKind::Load:
      E->Arg[0] = substitute(E->Arg[0]);
      break;
    case ExprKind::ITE:
      E->Arg[0] = substitute(E->Arg[0]);
      E->Arg[1] = substitute(E->Arg[1]);
      E->Arg[2] = substitute(E->Arg[2]);
      break;
    case ExprKind::CCall:
      for (Expr *&A : E->CallArgs)
        A = substitute(A);
      break;
    default:
      break;
    }
    return E;
  }

  /// Emits (in order) all held defs that cannot legally cross the current
  /// barrier statement.
  void flushConflicting(bool OnStore, bool OnPut, Range PutRange, bool All,
                        bool OnExit) {
    std::vector<Pending> Still;
    for (Pending &P : Held) {
      if (P.Consumed)
        continue;
      bool Conflicts = All;
      if (OnStore && P.HasLoad)
        Conflicts = true;
      if (OnExit && P.HasLoad)
        Conflicts = true;
      if (OnPut && P.HasGet)
        for (Range R : P.GetRanges)
          if (R.overlaps(PutRange))
            Conflicts = true;
      if (Conflicts)
        Emit->push_back(P.Def);
      else
        Still.push_back(std::move(P));
    }
    Held = std::move(Still);
  }

  IRSB &SB;
  std::vector<uint32_t> UseCount;
  std::vector<Pending> Held;
  std::vector<Stmt *> *Emit = nullptr;
};

} // namespace

void ir::buildTrees(IRSB &SB) { TreeBuilder(SB).run(); }
