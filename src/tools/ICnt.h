//===-- tools/ICnt.h - Instruction-counting tools ---------------*- C++ -*-==//
///
/// \file
/// The two instruction counters of Table 2:
///
///   ICntI — increments a counter with *inline* IR (a Get/Add64/Put on a
///           scratch guest-state slot) for every instruction executed;
///   ICntC — calls a C helper function for every instruction instead.
///
/// Their gap measures "the advantage of inline code over C calls"
/// (Section 5.4). Both demonstrate that analysis code is ordinary IR,
/// optimised and register-allocated together with client code.
///
//===----------------------------------------------------------------------===//
#ifndef VG_TOOLS_ICNT_H
#define VG_TOOLS_ICNT_H

#include "core/Core.h"
#include "core/Tool.h"

namespace vg {

/// Guest-state scratch slot the inline counter lives in (the padding
/// between the guest area and its shadow copy).
constexpr uint32_t ICntSlotOffset = 160;

class ICnt : public Tool {
public:
  enum class Mode { Inline, CCall };

  explicit ICnt(Mode M) : TheMode(M) {}

  const char *name() const override {
    return TheMode == Mode::Inline ? "icnt-inline" : "icnt-ccall";
  }

  void init(Core &C) override { TheCore = &C; }
  void instrument(ir::IRSB &SB) override;
  void fini(int ExitCode) override;

  /// Total instructions executed (valid during/after fini; for CCall mode
  /// it is live continuously).
  uint64_t count() const;

  /// The helper ICntC calls (public for the code-size report).
  static uint64_t helperIncrement(void *Env, uint64_t, uint64_t, uint64_t,
                                  uint64_t);

private:
  Mode TheMode;
  Core *TheCore = nullptr;
  uint64_t CCallCounter = 0;
  mutable uint64_t FinalCount = 0;
};

} // namespace vg

#endif // VG_TOOLS_ICNT_H
