//===-- core/TransTab.h - Translation storage (Section 3.8) -----*- C++ -*-==//
///
/// \file
/// Stores translations in a fixed-size, linear-probe hash table. When the
/// table passes 80% occupancy, translations are evicted in chunks of 1/8th
/// of the table using a FIFO policy — "chosen over the more obvious LRU
/// policy because it is simpler and still does a fairly good job".
/// Translations are also evicted when client code is unloaded (munmap) or
/// made obsolete by self-modifying code (Section 3.16), via
/// invalidateRange().
///
//===----------------------------------------------------------------------===//
#ifndef VG_CORE_TRANSTAB_H
#define VG_CORE_TRANSTAB_H

#include "hvm/Exec.h"

#include <memory>
#include <vector>

namespace vg {

/// One stored translation.
struct Translation {
  uint32_t Addr = 0;     ///< guest entry address
  hvm::CodeBlob Blob;    ///< encoded host code (Blob.Cookie == this)
  /// Guest ranges the translation was made from (for invalidation and SMC
  /// hashing; more than one when branches were chased).
  std::vector<std::pair<uint32_t, uint32_t>> Extents;
  uint64_t CodeHash = 0; ///< FNV-1a over the original guest bytes
  uint32_t NumInsns = 0;
  uint64_t Seq = 0; ///< insertion order (FIFO eviction key)
  /// Chain slots: successor translations for constant Boring exits,
  /// filled lazily by the dispatcher when chaining is enabled.
  std::vector<Translation *> Chain;
};

/// The fixed-size, linear-probe translation table.
class TransTab {
public:
  explicit TransTab(size_t CapacityPow2 = 1u << 14);

  Translation *lookup(uint32_t Addr);

  /// Takes ownership; may trigger a FIFO eviction run first. Returns the
  /// stored translation.
  Translation *insert(std::unique_ptr<Translation> T);

  /// Discards translations whose extents intersect [Addr, Addr+Len).
  /// Returns how many were discarded.
  unsigned invalidateRange(uint32_t Addr, uint32_t Len);

  void invalidateAll();

  /// Unlinks every chain pointer referring to \p T (called on eviction).
  void unchainAllTo(const Translation *T);

  size_t size() const { return Count; }
  size_t capacity() const { return Slots.size(); }

  // Statistics for bench/sec39_dispatch.
  struct Stats {
    uint64_t Inserts = 0;
    uint64_t Lookups = 0;
    uint64_t Hits = 0;
    uint64_t EvictionRuns = 0;
    uint64_t Evicted = 0;
    uint64_t Invalidated = 0;
  };
  const Stats &stats() const { return S; }

  /// Generation counter bumped on any eviction/invalidation so the
  /// dispatcher's fast cache can drop stale pointers.
  uint64_t generation() const { return Gen; }

private:
  struct Slot {
    enum class State : uint8_t { Empty, Full, Tomb };
    State St = State::Empty;
    std::unique_ptr<Translation> T;
  };

  size_t probeFor(uint32_t Addr) const;
  void evictChunk();
  void eraseSlot(size_t Idx);

  std::vector<Slot> Slots;
  size_t Count = 0;
  uint64_t NextSeq = 0;
  uint64_t Gen = 0;
  Stats S;
};

} // namespace vg

#endif // VG_CORE_TRANSTAB_H
