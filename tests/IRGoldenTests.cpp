//===-- tests/IRGoldenTests.cpp - Golden-file tests for the IR printer ----==//
///
/// \file
/// Pins the textual IR of representative translation-pipeline runs against
/// golden files in tests/goldens/. Any change to the front end, optimiser,
/// instrumentation, or printer that alters the rendered IR shows up as a
/// readable diff here.
///
/// To regenerate after an intentional change:
///
///   UPDATE_GOLDENS=1 ./build/tests/test_irgolden
///
/// which rewrites the files in the source tree (VG_TEST_GOLDEN_DIR).
///
//===----------------------------------------------------------------------===//

#include "core/Translate.h"
#include "guest/Assembler.h"
#include "ir/IRPrinter.h"
#include "tools/ICnt.h"
#include "tools/Memcheck.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace vg;
using namespace vg::vg1;

#ifndef VG_TEST_GOLDEN_DIR
#error "VG_TEST_GOLDEN_DIR must point at tests/goldens"
#endif

namespace {

bool updating() { return std::getenv("UPDATE_GOLDENS") != nullptr; }

std::string goldenPath(const std::string &Name) {
  return std::string(VG_TEST_GOLDEN_DIR) + "/" + Name + ".txt";
}

/// Compares \p Actual against the named golden (or rewrites it under
/// UPDATE_GOLDENS=1). On mismatch the full actual text is printed so the
/// diff is inspectable from the test log.
void checkGolden(const std::string &Name, const std::string &Actual) {
  std::string Path = goldenPath(Name);
  if (updating()) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out) << "cannot write " << Path;
    Out << Actual;
    return;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In) << "missing golden " << Path
                  << " (run with UPDATE_GOLDENS=1 to create)";
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Expect = SS.str();
  if (Expect != Actual) {
    // Locate the first differing line for a readable failure.
    std::istringstream EL(Expect), AL(Actual);
    std::string E, A;
    unsigned Line = 1;
    while (std::getline(EL, E) && std::getline(AL, A) && E == A)
      ++Line;
    FAIL() << Name << ": IR text diverges from golden at line " << Line
           << "\n  golden: " << E << "\n  actual: " << A
           << "\nFull actual output:\n" << Actual
           << "\n(UPDATE_GOLDENS=1 regenerates " << Path << ")";
  }
}

FetchFn fetchOf(uint32_t Base, const std::vector<uint8_t> &Img) {
  return [Base, &Img](uint32_t Addr, uint8_t *Buf,
                      uint32_t MaxLen) -> uint32_t {
    if (Addr < Base || Addr >= Base + Img.size())
      return 0;
    uint32_t N = std::min<uint32_t>(
        MaxLen, static_cast<uint32_t>(Base + Img.size() - Addr));
    std::memcpy(Buf, Img.data() + (Addr - Base), N);
    return N;
  };
}

/// One concatenated artifact dump: stable section headers + phase output.
std::string renderSections(
    const std::vector<std::pair<const char *, const std::string *>> &Secs) {
  std::string Out;
  for (const auto &[Title, Text] : Secs) {
    Out += std::string("== ") + Title + " ==\n";
    Out += *Text;
    if (!Text->empty() && Text->back() != '\n')
      Out += '\n';
  }
  return Out;
}

// The Figure-1 block: scaled-index load, ALU with flags, indirect jump.
std::vector<uint8_t> figureOneBlock() {
  Assembler A(0x24F275);
  A.ldx(Reg::R0, Reg::R3, Reg::R0, 2, -16180);
  A.add(Reg::R0, Reg::R0, Reg::R3);
  A.jmpr(Reg::R0);
  return A.finalize();
}

TEST(IRGolden, AluCcBranch) {
  // CMP feeding Bcc: the CC thunk is written, then the branch's calcCond
  // helper call is partially evaluated by the spec hook (constant CC_OP).
  Assembler B(0x2000);
  Label L = B.newLabel();
  B.movi(Reg::R1, 5);
  B.addi(Reg::R2, Reg::R1, -3);
  B.cmp(Reg::R1, Reg::R2);
  B.bcc(Cond::LES, L);
  B.hlt();
  B.bind(L);
  B.hlt();
  std::vector<uint8_t> Img = B.finalize();
  FetchFn F = fetchOf(0x2000, Img);
  TranslationOptions TO;
  TO.Verify = true;
  TranslationArtifacts Art;
  translateBlock(0x2000, F, TO, &Art);
  checkGolden("alu_cc_branch",
              renderSections({{"tree IR (phase 1)", &Art.TreeIR},
                              {"flat IR (phase 2)", &Art.FlatIR},
                              {"tree IR rebuilt (phase 5)",
                               &Art.RebuiltTreeIR}}));
}

TEST(IRGolden, LdxNulgrind) {
  std::vector<uint8_t> Img = figureOneBlock();
  FetchFn F = fetchOf(0x24F275, Img);
  TranslationOptions TO;
  TO.Verify = true;
  TranslationArtifacts Art;
  translateBlock(0x24F275, F, TO, &Art);
  checkGolden("ldx_nulgrind",
              renderSections({{"tree IR (phase 1)", &Art.TreeIR},
                              {"flat IR (phase 2)", &Art.FlatIR},
                              {"host code, virtual regs (phase 6)",
                               &Art.HostPreAlloc},
                              {"host code, allocated (phase 7)",
                               &Art.HostPostAlloc}}));
}

TEST(IRGolden, LdxMemcheck) {
  std::vector<uint8_t> Img = figureOneBlock();
  FetchFn F = fetchOf(0x24F275, Img);
  Memcheck MC;
  TranslationOptions TO;
  TO.Verify = true;
  TO.Instrument = [&](ir::IRSB &SB) { MC.instrument(SB); };
  TranslationArtifacts Art;
  translateBlock(0x24F275, F, TO, &Art);
  checkGolden("ldx_memcheck",
              renderSections({{"instrumented flat IR (phase 3)",
                               &Art.InstrumentedIR},
                              {"optimised flat IR (phase 4)",
                               &Art.OptimisedIR}}));
}

TEST(IRGolden, LdxIcntInline) {
  std::vector<uint8_t> Img = figureOneBlock();
  FetchFn F = fetchOf(0x24F275, Img);
  ICnt IC(ICnt::Mode::Inline);
  TranslationOptions TO;
  TO.Verify = true;
  TO.Instrument = [&](ir::IRSB &SB) { IC.instrument(SB); };
  TranslationArtifacts Art;
  translateBlock(0x24F275, F, TO, &Art);
  checkGolden("ldx_icnt_inline",
              renderSections({{"instrumented flat IR (phase 3)",
                               &Art.InstrumentedIR},
                              {"optimised flat IR (phase 4)",
                               &Art.OptimisedIR}}));
}

TEST(IRGolden, FpSimdCpuinfo) {
  // FP moves/conversions/compare, packed SIMD, and the CPUINFO dirty
  // helper with its register-effect annotations.
  Assembler A(0x3000);
  A.fmovi(FReg::F0, 1.5);
  A.fitod(FReg::F1, Reg::R2);
  A.fadd(FReg::F2, FReg::F0, FReg::F1);
  A.fcmp(FReg::F2, FReg::F0);
  A.vadd8(Reg::R4, Reg::R5, Reg::R6);
  A.cpuinfo();
  A.ret();
  std::vector<uint8_t> Img = A.finalize();
  FetchFn F = fetchOf(0x3000, Img);
  TranslationOptions TO;
  TO.Verify = true;
  TranslationArtifacts Art;
  translateBlock(0x3000, F, TO, &Art);
  checkGolden("fp_simd_cpuinfo",
              renderSections({{"tree IR (phase 1)", &Art.TreeIR},
                              {"flat IR (phase 2)", &Art.FlatIR}}));
}

/// A 3-constituent hot path for the trace (tier 2) pipeline. Each
/// constituent ends at a conditional branch whose fall-through continues
/// the path; the taken sides are cold exits that immediately overwrite
/// the flags, so the cross-block liveness pass can prove the thunk dead
/// there too. A and C load the same address [r5+8] with no intervening
/// store, giving the cross-seam CSE something to collapse.
struct TraceProgram {
  std::vector<uint8_t> Img;
  uint32_t A = 0, B = 0, C = 0;
  TraceSpec Spec;

  TraceProgram() {
    Assembler As(0x4000);
    Label Cold = As.newLabel();
    A = As.here();
    As.ld(Reg::R4, Reg::R5, 8);
    As.addi(Reg::R1, Reg::R1, 1); // flag write, dead: cmpi overwrites
    As.cmpi(Reg::R1, 10);
    As.beq(Cold);
    B = As.here();
    As.addi(Reg::R2, Reg::R2, 2); // flag write: kills A's thunk cross-seam
    As.cmpi(Reg::R2, 20);
    As.beq(Cold);
    C = As.here();
    As.ld(Reg::R6, Reg::R5, 8); // same address as A's load
    As.cmpi(Reg::R6, 30);
    As.beq(Cold);
    As.ret();
    As.bind(Cold);
    As.cmpi(Reg::R0, 0); // overwrites flags: side exits are flag-dead
    As.ret();
    Img = As.finalize();
    Spec.Entries = {A, B, C};
  }
};

TEST(IRGolden, TraceFlagLiveness) {
  // The stitched 3-block trace under Nulgrind: A's and B's CC-thunk
  // writes are deleted (overwritten downstream before any read, and the
  // guarded side exits target flag-dead code), while C's survive as the
  // trace's live-out. The golden pins both the stitched phase-2 IR (side
  // exits visible) and the phase-4 result the liveness pass shaped.
  TraceProgram P;
  FetchFn F = fetchOf(0x4000, P.Img);
  TranslationOptions TO;
  TO.Verify = true;
  TO.Trace = P.Spec;
  ir::TraceOptStats TS;
  TO.TraceStats = &TS;
  TranslationArtifacts Art;
  TranslatedBlock TB = translateBlock(P.A, F, TO, &Art);
  ASSERT_EQ(TB.Meta.TraceEntries, P.Spec.Entries);
  EXPECT_GT(TS.DeadFlagPuts, 0u);
  checkGolden("trace_flag_liveness",
              renderSections({{"stitched flat IR (phase 2)", &Art.FlatIR},
                              {"optimised flat IR (phase 4)",
                               &Art.OptimisedIR}}));
}

TEST(IRGolden, TraceCrossSeamCSE) {
  // The same trace under Memcheck: C's reload of [r5+8] re-uses A's
  // address computation and guest-register get across two seams, and its
  // ShadowProbe collapses to a copy of A's probe result (guard hoisting —
  // the addressability/definedness check runs once at the first access).
  TraceProgram P;
  FetchFn F = fetchOf(0x4000, P.Img);
  Memcheck MC;
  TranslationOptions TO;
  TO.Verify = true;
  TO.Trace = P.Spec;
  ir::TraceOptStats TS;
  TO.TraceStats = &TS;
  TO.Instrument = [&](ir::IRSB &SB) { MC.instrument(SB); };
  TranslationArtifacts Art;
  TranslatedBlock TB = translateBlock(P.A, F, TO, &Art);
  ASSERT_EQ(TB.Meta.TraceEntries, P.Spec.Entries);
  EXPECT_GT(TS.ProbesCSEd, 0u);
  checkGolden("trace_cross_seam_cse",
              renderSections({{"optimised flat IR (phase 4)",
                               &Art.OptimisedIR}}));
}

TEST(IRGolden, PrinterPrimitives) {
  // The printer itself: offsets resolved via vg1OffsetName, including
  // shadow offsets, plus expression rendering.
  using namespace vg::ir;
  IRSB SB;
  TmpId T0 = SB.wrTmp(SB.get(vg1::gso::gpr(3), Ty::I32));
  TmpId T1 = SB.wrTmp(SB.binop(Op::Add32, SB.rdTmp(T0), SB.constI32(0x10)));
  SB.put(vg1::gso::gpr(3) + vg1::gso::ShadowOffset, SB.rdTmp(T1));
  SB.put(vg1::gso::PC, SB.constI32(0x1234));
  checkGolden("printer_primitives", toString(SB, vg1OffsetName));
}

} // namespace
