file(REMOVE_RECURSE
  "CMakeFiles/test_transtab.dir/TransTabTests.cpp.o"
  "CMakeFiles/test_transtab.dir/TransTabTests.cpp.o.d"
  "test_transtab"
  "test_transtab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transtab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
