//===-- fuzz/Corpus.cpp - .vg1 repro corpus management --------------------==//

#include "fuzz/Corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace vg;
using namespace vg::fuzz;
namespace fs = std::filesystem;

std::vector<std::string> vg::fuzz::listCases(const std::string &Dir) {
  std::vector<std::string> Out;
  std::error_code EC;
  for (const auto &Entry : fs::directory_iterator(Dir, EC)) {
    if (Entry.is_regular_file() && Entry.path().extension() == ".vg1")
      Out.push_back(Entry.path().string());
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

bool vg::fuzz::loadCase(const std::string &Path, FuzzProgram &Out,
                        std::string &Err) {
  std::ifstream In(Path);
  if (!In) {
    Err = "cannot open " + Path;
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return parse(SS.str(), Out, Err);
}

bool vg::fuzz::saveCase(const std::string &Path, const FuzzProgram &P) {
  std::ofstream OutF(Path);
  if (!OutF)
    return false;
  OutF << serialize(P, /*WithDisasm=*/true);
  return static_cast<bool>(OutF);
}
